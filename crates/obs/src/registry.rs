//! A lock-free metrics registry with Prometheus text rendering.
//!
//! Registration (`counter` / `gauge`) takes a short-lived mutex and
//! hands back a [`Metric`]: a cloneable handle around one shared
//! `AtomicU64` cell. Every *update* on the handle is a single relaxed
//! atomic operation — no lock, no allocation — so socket readers, the
//! core loop, and ring bookkeeping can all feed the registry from their
//! hot paths. Registering the same `(name, labels)` pair twice returns
//! the same cell, so independent layers can share a series without
//! coordinating.
//!
//! [`Registry::render_prometheus`] emits the [Prometheus exposition
//! format] (text, version 0.0.4): one `# HELP` / `# TYPE` header per
//! metric name, label values escaped per the spec (backslash, double
//! quote, newline).
//!
//! [Prometheus exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Whether a series is a monotone counter or a settable gauge. Only
/// affects rendering (`# TYPE`) and reader expectations; both are
/// backed by the same atomic cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing (use [`Metric::inc`]/[`Metric::add`]).
    Counter,
    /// Instantaneous value (use [`Metric::set`]/[`Metric::record_max`]).
    Gauge,
}

/// A cloneable handle to one registered series. All operations are
/// lock-free single atomic instructions.
#[derive(Debug, Clone)]
pub struct Metric {
    cell: Arc<AtomicU64>,
}

impl Metric {
    /// A handle not attached to any registry (a null sink for layers
    /// run without telemetry).
    pub fn detached() -> Self {
        Metric { cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the value (gauges).
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is higher (high-water marks).
    pub fn record_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One registered series with its metadata.
#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    kind: MetricKind,
    cell: Arc<AtomicU64>,
}

/// A point-in-time reading of one series (see [`Registry::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The value at snapshot time.
    pub value: u64,
}

/// The registry: a set of named atomic series.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Metric {
        self.register(MetricKind::Counter, name, &[], help)
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Metric {
        self.register(MetricKind::Gauge, name, &[], help)
    }

    /// Registers (or finds) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Metric {
        self.register(MetricKind::Counter, name, labels, help)
    }

    /// Registers (or finds) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Metric {
        self.register(MetricKind::Gauge, name, labels, help)
    }

    fn register(
        &self,
        kind: MetricKind,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Metric {
        let mut entries = self.entries.lock().expect("metrics registry");
        if let Some(entry) = entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels.iter().zip(labels).all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return Metric { cell: Arc::clone(&entry.cell) };
        }
        let cell = Arc::new(AtomicU64::new(0));
        entries.push(Entry {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            help: help.to_string(),
            kind,
            cell: Arc::clone(&cell),
        });
        Metric { cell }
    }

    /// Reads every registered series at once.
    pub fn snapshot(&self) -> Vec<Sample> {
        let entries = self.entries.lock().expect("metrics registry");
        entries
            .iter()
            .map(|e| Sample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                kind: e.kind,
                value: e.cell.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Renders every series in the Prometheus text exposition format
    /// (version 0.0.4). Series sharing a name emit one `# HELP` /
    /// `# TYPE` header and stay grouped together regardless of
    /// registration interleaving.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry");
        let mut out = String::new();
        let mut rendered: Vec<&str> = Vec::new();
        for (index, entry) in entries.iter().enumerate() {
            if rendered.contains(&entry.name.as_str()) {
                continue;
            }
            rendered.push(&entry.name);
            let type_name = match entry.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
            };
            let _ = writeln!(out, "# HELP {} {}", entry.name, escape_help(&entry.help));
            let _ = writeln!(out, "# TYPE {} {}", entry.name, type_name);
            for sibling in entries[index..].iter().filter(|e| e.name == entry.name) {
                out.push_str(&sibling.name);
                if !sibling.labels.is_empty() {
                    out.push('{');
                    for (i, (key, value)) in sibling.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
                    }
                    out.push('}');
                }
                let _ = writeln!(out, " {}", sibling.cell.load(Ordering::Relaxed));
            }
        }
        out
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes a `# HELP` text: backslash and newline (quotes are legal
/// there).
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_cell() {
        let registry = Registry::new();
        let a = registry.counter("splitbft_test_total", "a test counter");
        let b = registry.counter("splitbft_test_total", "a test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(registry.snapshot().len(), 1);

        let labeled = registry.counter_with("splitbft_test_total", &[("shard", "0")], "t");
        labeled.inc();
        assert_eq!(a.get(), 3, "a labeled series is a distinct cell");
        assert_eq!(registry.snapshot().len(), 2);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let registry = Arc::new(Registry::new());
        let metric = registry.counter("splitbft_concurrent_total", "hammered");
        let threads = 8u64;
        let per_thread = 50_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let metric = metric.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        metric.inc();
                    }
                });
            }
            // Mid-run snapshots never see a torn or decreasing value.
            let mut last = 0u64;
            for _ in 0..100 {
                let now = metric.get();
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
                std::thread::yield_now();
            }
        });
        assert_eq!(metric.get(), threads * per_thread);
    }

    #[test]
    fn snapshots_of_counters_are_monotone() {
        let registry = Arc::new(Registry::new());
        let metric = registry.counter("splitbft_mono_total", "monotone");
        std::thread::scope(|s| {
            let registry2 = Arc::clone(&registry);
            let hammer = s.spawn(move || {
                for _ in 0..100_000 {
                    metric.inc();
                }
            });
            let mut last = 0u64;
            while !hammer.is_finished() {
                let snap = registry2.snapshot();
                let value = snap.iter().find(|s| s.name == "splitbft_mono_total").unwrap().value;
                assert!(value >= last);
                last = value;
            }
        });
    }

    #[test]
    fn prometheus_rendering_groups_and_escapes() {
        let registry = Registry::new();
        registry.gauge("splitbft_view", "current view").set(3);
        registry
            .counter_with("splitbft_shard_progress", &[("shard", "0")], "per-shard progress")
            .add(10);
        // Interleave another name between two series of the same name.
        registry.counter("splitbft_fsyncs_total", "wal fsyncs").add(7);
        registry
            .counter_with("splitbft_shard_progress", &[("shard", "1")], "per-shard progress")
            .add(20);
        let tricky = registry.gauge_with(
            "splitbft_annotated",
            &[("note", "a\\b \"quoted\"\nnewline")],
            "escaping probe",
        );
        tricky.set(1);

        let text = registry.render_prometheus();
        assert!(text.contains("# HELP splitbft_view current view\n"));
        assert!(text.contains("# TYPE splitbft_view gauge\n"));
        assert!(text.contains("splitbft_view 3\n"));
        assert!(text.contains("# TYPE splitbft_fsyncs_total counter\n"));
        assert!(text.contains("splitbft_shard_progress{shard=\"0\"} 10\n"));
        assert!(text.contains("splitbft_shard_progress{shard=\"1\"} 20\n"));
        assert!(
            text.contains("splitbft_annotated{note=\"a\\\\b \\\"quoted\\\"\\nnewline\"} 1\n"),
            "label escaping: {text}"
        );
        // One TYPE header per name even with interleaved registration.
        assert_eq!(text.matches("# TYPE splitbft_shard_progress").count(), 1);
        // No raw newline may survive inside a label value.
        for line in text.lines() {
            assert!(!line.is_empty() || text.ends_with('\n'));
        }
    }

    #[test]
    fn high_water_gauge_only_rises() {
        let registry = Registry::new();
        let hw = registry.gauge("splitbft_queue_depth_high_water", "queue depth high-water");
        hw.record_max(5);
        hw.record_max(3);
        assert_eq!(hw.get(), 5);
        hw.record_max(9);
        assert_eq!(hw.get(), 9);
    }

    #[test]
    fn escaping_properties_hold_for_arbitrary_strings() {
        use proptest::{any, collection, Strategy};
        let mut rng = proptest::rng_for("escaping_properties_hold_for_arbitrary_strings");
        let strategy = collection::vec(any::<u8>(), 0..64)
            .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned());
        for _ in 0..256 {
            let input = strategy.generate(&mut rng);
            let escaped = escape_label_value(&input);
            // Escaped output never contains a raw newline or an
            // unescaped quote, so the rendered line stays one line and
            // the quoting stays balanced.
            assert!(!escaped.contains('\n'));
            let mut chars = escaped.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    let next = chars.next().expect("dangling backslash");
                    assert!(matches!(next, '\\' | '"' | 'n'), "bad escape \\{next}");
                } else {
                    assert_ne!(c, '"', "unescaped quote");
                }
            }
            // Unescaping restores the input exactly (round-trip).
            let mut unescaped = String::new();
            let mut chars = escaped.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('\\') => unescaped.push('\\'),
                        Some('"') => unescaped.push('"'),
                        Some('n') => unescaped.push('\n'),
                        other => panic!("bad escape: {other:?}"),
                    }
                } else {
                    unescaped.push(c);
                }
            }
            assert_eq!(unescaped, input);
        }
    }
}
