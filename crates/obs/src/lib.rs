//! The observability plane of the SplitBFT reproduction.
//!
//! Deployed replicas used to be blind boxes whose only runtime signal
//! was stderr marker lines. This crate gives every layer one shared
//! telemetry surface:
//!
//! - [`registry`] — a lock-free metrics registry: registration takes a
//!   short-lived lock, but every *update* is a single relaxed atomic
//!   operation on a pre-registered [`registry::Metric`] handle, so hot
//!   paths (socket readers, the core loop, ring bookkeeping) never
//!   contend. The registry renders itself as Prometheus exposition
//!   text.
//! - [`hist`] — the log-bucketed latency histogram (generalized out of
//!   `splitbft-loadgen`, which now re-exports it) plus a lock-free
//!   [`hist::AtomicHistogram`] variant for concurrent recorders.
//! - [`journal`] — a bounded, structured event journal of typed
//!   [`splitbft_types::StatusEvent`]s: the replacement for the stderr
//!   marker protocol, queryable over the `STATUS` frame kind.
//! - [`telemetry`] — [`telemetry::NodeTelemetry`]: the per-node bundle
//!   of registry handles, journal, and lifecycle flags (recovering /
//!   draining / drained) that the transport backends feed and the
//!   `STATUS` frame and HTTP endpoint serve.
//! - [`http`] — a minimal `std::net` HTTP server exposing `/metrics`
//!   (Prometheus text), `/healthz`, and `/readyz` (ready = recovered
//!   and caught up within a watermark gap, and not draining).
//!
//! The crate deliberately depends only on `splitbft-types` so every
//! layer — transport, store, shard combinator, node binary, load
//! generator — can feed the same registry without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod http;
pub mod journal;
pub mod registry;
pub mod telemetry;

pub use hist::{AtomicHistogram, LatencyHistogram, Windows};
pub use http::MetricsServer;
pub use journal::EventJournal;
pub use registry::{Metric, MetricKind, Registry, Sample};
pub use telemetry::NodeTelemetry;
