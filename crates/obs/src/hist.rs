//! Allocation-light latency and throughput recording.
//!
//! The hot path of a recorder must not allocate per sample, or the
//! measurement perturbs the measured system. [`LatencyHistogram`] is a
//! fixed-size log-bucketed histogram (exact below 32 µs, then 32
//! sub-buckets per power of two — ≤ ~3 % relative bucket width across
//! the full `u64` microsecond range), recorded into with two integer
//! operations per sample. [`AtomicHistogram`] is the same bucket layout
//! over atomic cells for recorders shared across threads.
//! [`Windows`] tracks completions per fixed time window for the
//! per-window throughput series in `BENCH_*.json` reports.
//!
//! This module started life in `splitbft-loadgen`; it moved here so the
//! node-side metrics registry and the load generator share one bucket
//! scheme (loadgen re-exports these types unchanged).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Values below this many microseconds get one exact bucket each.
const LINEAR_CUTOFF: u64 = 32;
/// Sub-buckets per power-of-two octave above the linear range.
const SUB_BUCKETS: u64 = 32;
/// `log2(SUB_BUCKETS)`.
const SUB_SHIFT: u32 = 5;
/// Total bucket count covering all of `u64`.
const NUM_BUCKETS: usize = (LINEAR_CUTOFF as usize) + (64 - SUB_SHIFT as usize) * 32;

/// A log-bucketed latency histogram over microsecond samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(micros: u64) -> usize {
    if micros < LINEAR_CUTOFF {
        micros as usize
    } else {
        let exp = 63 - micros.leading_zeros(); // floor(log2), >= SUB_SHIFT
        let sub = ((micros >> (exp - SUB_SHIFT)) - SUB_BUCKETS) as usize;
        LINEAR_CUTOFF as usize + (exp - SUB_SHIFT) as usize * SUB_BUCKETS as usize + sub
    }
}

/// The smallest value mapping to bucket `index` (the value a percentile
/// query reports; under-approximates by at most one bucket width).
fn bucket_floor(index: usize) -> u64 {
    if index < LINEAR_CUTOFF as usize {
        index as u64
    } else {
        let octave = (index - LINEAR_CUTOFF as usize) / SUB_BUCKETS as usize;
        let sub = ((index - LINEAR_CUTOFF as usize) % SUB_BUCKETS as usize) as u64;
        let exp = SUB_SHIFT + octave as u32;
        (1u64 << exp) + (sub << (exp - SUB_SHIFT))
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[bucket_index(micros)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(micros);
        self.max = self.max.max(micros);
    }

    /// Folds another histogram into this one (used to merge per-client
    /// recorders after a run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds, resolved to the
    /// lower bound of its bucket. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max; // the tail is tracked exactly
        }
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The max is exact; prefer it for the tail bucket.
                return bucket_floor(index).min(self.max);
            }
        }
        self.max
    }
}

/// The same bucket layout as [`LatencyHistogram`] over atomic cells, so
/// several threads can record without a lock and any thread can take a
/// consistent-enough snapshot.
///
/// Recording increments the bucket *before* the total count, and
/// [`AtomicHistogram::snapshot`] reads the total *before* the buckets,
/// so a snapshot's per-bucket sum is never below its total — no sample
/// is ever half-visible as "counted but bucketless".
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one latency sample (lock-free; callable from any thread).
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
        // Last, so concurrent snapshots never see a count without its
        // bucket (release pairs with the acquire load in `snapshot`).
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Copies the current state into a plain [`LatencyHistogram`] for
    /// percentile queries and merging.
    pub fn snapshot(&self) -> LatencyHistogram {
        let count = self.count.load(Ordering::Acquire);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        // Clamp the bucket sum down to `count`: samples recorded during
        // the copy may have hit a bucket but not yet the total.
        let mut extra = counts.iter().sum::<u64>().saturating_sub(count);
        let mut counts = counts;
        for cell in counts.iter_mut().rev() {
            if extra == 0 {
                break;
            }
            let take = (*cell).min(extra);
            *cell -= take;
            extra -= take;
        }
        LatencyHistogram { counts, count, sum, max }
    }
}

/// Completions per fixed wall-clock window since the run started — the
/// per-window throughput series of a bench report.
#[derive(Debug, Clone)]
pub struct Windows {
    window: Duration,
    counts: Vec<u64>,
}

impl Windows {
    /// An empty series with the given window length.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        Windows { window, counts: Vec::new() }
    }

    /// Records one completion at `elapsed` since the run started.
    pub fn record(&mut self, elapsed: Duration) {
        let index = (elapsed.as_nanos() / self.window.as_nanos()) as usize;
        if index >= self.counts.len() {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += 1;
    }

    /// Folds another series (same window length) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the window lengths differ.
    pub fn merge(&mut self, other: &Windows) {
        assert_eq!(self.window, other.window, "cannot merge different window lengths");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// The window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Completions per window, in time order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut last = 0;
        for v in 0..100_000u64 {
            let b = bucket_index(v);
            assert!(b == last || b == last + 1, "bucket jump at {v}");
            last = b;
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
        }
        // The largest possible sample still lands inside the table.
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v);
            let error = (v - floor) as f64 / (v as f64);
            assert!(error < 1.0 / 32.0 + 1e-9, "error too large at {v}");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        // Bucketed answers land within one bucket (~3 %) of the truth.
        assert!((470..=500).contains(&p50), "p50 = {p50}");
        assert!((950..=990).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.max_us(), 1000);
        assert!((h.mean_us() - 500.5).abs() < 0.01);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for us in 1..=500u64 {
            a.record(Duration::from_micros(us));
            whole.record(Duration::from_micros(us));
        }
        for us in 501..=1000u64 {
            b.record(Duration::from_micros(us));
            whole.record(Duration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn windows_accumulate_and_merge() {
        let mut w = Windows::new(Duration::from_secs(1));
        w.record(Duration::from_millis(100));
        w.record(Duration::from_millis(900));
        w.record(Duration::from_millis(1500));
        assert_eq!(w.counts(), &[2, 1]);

        let mut other = Windows::new(Duration::from_secs(1));
        other.record(Duration::from_millis(2500));
        w.merge(&other);
        assert_eq!(w.counts(), &[2, 1, 1]);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn atomic_histogram_matches_sequential_recording() {
        let atomic = AtomicHistogram::new();
        let mut plain = LatencyHistogram::new();
        for us in 1..=1000u64 {
            atomic.record(Duration::from_micros(us));
            plain.record(Duration::from_micros(us));
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.max_us(), plain.max_us());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.percentile(q), plain.percentile(q));
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing_and_never_tears() {
        use std::sync::Arc;
        let hist = Arc::new(AtomicHistogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let hist = Arc::clone(&hist);
                s.spawn(move || {
                    for i in 0..per_thread {
                        hist.record(Duration::from_micros(1 + (t * per_thread + i) % 5_000));
                    }
                });
            }
            // Snapshots taken mid-run must always be internally
            // consistent: bucket sum equals count (no torn reads).
            for _ in 0..50 {
                let snap = hist.snapshot();
                let bucket_sum: u64 = snap.counts.iter().sum();
                assert_eq!(bucket_sum, snap.count(), "torn snapshot");
                std::thread::yield_now();
            }
        });
        let final_snap = hist.snapshot();
        assert_eq!(final_snap.count(), threads * per_thread, "dropped samples");
        let bucket_sum: u64 = final_snap.counts.iter().sum();
        assert_eq!(bucket_sum, final_snap.count());
    }
}
