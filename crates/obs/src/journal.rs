//! A bounded, structured event journal.
//!
//! The typed replacement for the stderr marker protocol: layers record
//! [`StatusEvent`]s (view changes, checkpoint seals, state-transfer
//! applications, fault-plan changes, drain lifecycle) into a bounded
//! ring; tooling polls a suffix by sequence number over the `STATUS`
//! frame. Eviction is oldest-first, so a slow poller loses history, not
//! recency — the same refuse-the-past stance as the transport's bounded
//! rings.

use splitbft_types::StatusEvent;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default retention: events kept before the oldest is evicted. Chaos
/// phases produce a handful of events each; 1024 spans an entire
/// scenario with two orders of magnitude to spare.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// The bounded journal. `record` takes the mutex briefly; `head` is a
/// lock-free read for hot-path checks.
#[derive(Debug)]
pub struct EventJournal {
    inner: Mutex<Inner>,
    /// Mirror of `inner.next` for lock-free reads.
    head: AtomicU64,
    capacity: usize,
}

#[derive(Debug)]
struct Inner {
    /// `(sequence, event)` pairs, oldest first.
    events: VecDeque<(u64, StatusEvent)>,
    /// Sequence number the next event will get.
    next: u64,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// An empty journal retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        EventJournal {
            inner: Mutex::new(Inner { events: VecDeque::new(), next: 0 }),
            head: AtomicU64::new(0),
            capacity,
        }
    }

    /// Appends one event, evicting the oldest if full. Returns the
    /// sequence number assigned.
    pub fn record(&self, event: StatusEvent) -> u64 {
        let mut inner = self.inner.lock().expect("event journal");
        let seq = inner.next;
        inner.next += 1;
        inner.events.push_back((seq, event));
        if inner.events.len() > self.capacity {
            inner.events.pop_front();
        }
        self.head.store(inner.next, Ordering::Release);
        seq
    }

    /// The sequence number the next event will be assigned (equals the
    /// count ever recorded). Lock-free.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Retained events with sequence `>= since`, oldest first.
    pub fn since(&self, since: u64) -> Vec<(u64, StatusEvent)> {
        let inner = self.inner.lock().expect("event journal");
        inner.events.iter().filter(|(seq, _)| *seq >= since).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_dense_and_queries_are_suffixes() {
        let journal = EventJournal::new(16);
        for view in 0..5u64 {
            assert_eq!(journal.record(StatusEvent::ViewChange { view }), view);
        }
        assert_eq!(journal.head(), 5);
        let tail = journal.since(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0], (3, StatusEvent::ViewChange { view: 3 }));
        assert_eq!(tail[1], (4, StatusEvent::ViewChange { view: 4 }));
        assert!(journal.since(5).is_empty());
    }

    #[test]
    fn eviction_drops_oldest_but_keeps_sequence_numbers() {
        let journal = EventJournal::new(4);
        for seq in 0..10u64 {
            journal.record(StatusEvent::CheckpointSealed { seq });
        }
        assert_eq!(journal.head(), 10);
        let all = journal.since(0);
        assert_eq!(all.len(), 4, "bounded at capacity");
        // The survivors are the newest four, with original sequences.
        assert_eq!(
            all.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn concurrent_recording_assigns_unique_sequences() {
        use std::sync::Arc;
        let journal = Arc::new(EventJournal::new(100_000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let journal = Arc::clone(&journal);
                s.spawn(move || {
                    for _ in 0..1000 {
                        journal.record(StatusEvent::FaultPlanApplied);
                    }
                });
            }
        });
        assert_eq!(journal.head(), 4000);
        let all = journal.since(0);
        assert_eq!(all.len(), 4000);
        for (index, (seq, _)) in all.iter().enumerate() {
            assert_eq!(*seq, index as u64, "dense, ordered sequences");
        }
    }
}
