//! A minimal HTTP/1.1 endpoint for metrics and health probes.
//!
//! Serves exactly three paths from one listener thread:
//!
//! - `GET /metrics` — the node registry rendered as Prometheus text
//!   exposition format (version 0.0.4).
//! - `GET /healthz` — liveness: `200 ok` whenever the process answers.
//! - `GET /readyz` — readiness per [`NodeTelemetry::ready`]: `200` when
//!   recovered, caught up within the watermark gap, and not draining;
//!   `503` otherwise.
//!
//! The build environment has no HTTP crate and must not grow one: this
//! handles one tiny request per connection over blocking `std::net`
//! sockets, which is exactly enough for a scrape loop and health
//! probes. Connections are served sequentially — a scraper and a
//! health checker produce a few requests per second, far below any
//! level where that matters.

use crate::telemetry::NodeTelemetry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics endpoint; dropping it leaves the thread running
/// until [`MetricsServer::shutdown`] is called (the node owns it for
/// its whole life).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 lets the OS pick) and starts serving
    /// `telemetry` on a background thread.
    pub fn serve(addr: SocketAddr, telemetry: Arc<NodeTelemetry>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-http".into())
            .spawn(move || serve_loop(listener, telemetry, stop_thread))?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_loop(listener: TcpListener, telemetry: Arc<NodeTelemetry>, stop: Arc<AtomicBool>) {
    loop {
        let Ok((stream, _)) = listener.accept() else { break };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = answer(stream, &telemetry);
    }
}

/// Reads one request head and writes one response. Any parse trouble
/// gets a 400 and the connection closes either way.
fn answer(mut stream: TcpStream, telemetry: &NodeTelemetry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let path = match read_request_path(&mut stream) {
        Some(path) => path,
        None => {
            return respond(&mut stream, 400, "text/plain", "bad request\n");
        }
    };
    match path.as_str() {
        "/metrics" => {
            let body = telemetry.render_prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/readyz" => {
            if telemetry.ready() {
                respond(&mut stream, 200, "text/plain", "ready\n")
            } else {
                let detail = if telemetry.draining() {
                    "not ready: draining\n"
                } else if telemetry.recovering() {
                    "not ready: recovering\n"
                } else {
                    "not ready: catching up\n"
                };
                respond(&mut stream, 503, "text/plain", detail)
            }
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Reads up to the end of the request head and returns the request
/// path, or `None` if the head never materializes or is not a GET.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8192 {
            return None; // oversized head
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string; probes sometimes append cache-busters.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let code: u16 =
            response.split_whitespace().nth(1).expect("status code").parse().unwrap();
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (code, body)
    }

    #[test]
    fn serves_metrics_health_and_readiness() {
        let telemetry = NodeTelemetry::new(5);
        telemetry.progress.set(321);
        let server =
            MetricsServer::serve("127.0.0.1:0".parse().unwrap(), Arc::clone(&telemetry))
                .unwrap();
        let addr = server.local_addr();

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("splitbft_progress 321"), "{body}");

        assert_eq!(get(addr, "/healthz").0, 200);
        assert_eq!(get(addr, "/readyz").0, 200, "fresh node is ready");

        telemetry.set_recovering(true);
        let (code, body) = get(addr, "/readyz");
        assert_eq!(code, 503);
        assert!(body.contains("recovering"));
        telemetry.set_recovering(false);

        telemetry.request_drain();
        let (code, body) = get(addr, "/readyz");
        assert_eq!(code, 503);
        assert!(body.contains("draining"));

        assert_eq!(get(addr, "/nope").0, 404);
        server.shutdown();
    }
}
