//! Shared types for the SplitBFT reproduction.
//!
//! This crate contains everything that the paper's Table 2 calls the
//! *shared types* portion of the TCB: identifiers, protocol messages, the
//! wire codec, and cluster configuration. It deliberately has no dependency
//! on the cryptographic or runtime crates so that every other crate in the
//! workspace (protocol cores, TEE runtime, simulator, model checker) can
//! speak the same vocabulary.
//!
//! # Overview
//!
//! - [`ids`] — strongly-typed identifiers ([`ReplicaId`], [`ClientId`],
//!   [`View`], [`SeqNum`], …) following the newtype discipline.
//! - [`digest`] — the 32-byte [`Digest`] used to bind message contents.
//! - [`wire`] — a small deterministic binary codec ([`wire::Encode`] /
//!   [`wire::Decode`]). SplitBFT compartments exchange *serialized* messages
//!   across the enclave boundary, so the codec is part of the trusted
//!   computing base and is kept free of unsafe code and of external
//!   dependencies.
//! - [`message`] — the PBFT/SplitBFT message vocabulary (`Request`,
//!   `PrePrepare`, `Prepare`, `Commit`, `Reply`, `Checkpoint`, `ViewChange`,
//!   `NewView`) plus quorum certificates.
//! - [`durable`] — the durability plane's vocabulary: WAL records
//!   ([`DurableEvent`]), sealed checkpoints ([`DurableCheckpoint`]), and
//!   the `STATE_TRANSFER` request/response pair.
//! - [`fault`] — the chaos plane's control vocabulary: runtime
//!   [`FaultCommand`]s steering per-link fault rules and named
//!   partitions on the transport.
//! - [`status`] — the telemetry plane's vocabulary: versioned
//!   [`NodeSnapshot`]s, typed journal [`StatusEvent`]s, and the
//!   [`StatusRequest`]/[`StatusResponse`] pair served on the `STATUS`
//!   frame kind.
//! - [`shard`] — the sharding plane's vocabulary: [`ShardId`], the
//!   shard-tagged [`ShardEnvelope`] multiplexing N consensus groups
//!   over one transport, and the deterministic [`shard_for_key`] hash.
//! - [`compartment`] — the three compartment kinds of the paper
//!   (Preparation, Confirmation, Execution).
//! - [`config`] — cluster and batching configuration with the `3f + 1`
//!   arithmetic used throughout.
//!
//! # Example
//!
//! ```
//! use splitbft_types::{ClusterConfig, ReplicaId, View};
//!
//! let cfg = ClusterConfig::new(4).expect("4 replicas is a valid BFT cluster");
//! assert_eq!(cfg.f(), 1);
//! assert_eq!(cfg.quorum(), 3);
//! assert_eq!(View::initial().primary(&cfg), ReplicaId(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compartment;
pub mod config;
pub mod digest;
pub mod durable;
pub mod error;
pub mod fault;
pub mod ids;
pub mod message;
pub mod shard;
pub mod status;
pub mod wire;

pub use compartment::CompartmentKind;
pub use fault::{FaultCommand, LinkRule};
pub use config::{BatchConfig, ClusterConfig, TimerConfig};
pub use digest::Digest;
pub use durable::{DurableCheckpoint, DurableEvent, StateTransferRequest, StateTransferResponse};
pub use error::ProtocolError;
pub use ids::{ClientId, EnclaveId, ReplicaId, RequestId, SeqNum, SignerId, Timestamp, View};
pub use message::{
    Checkpoint, CheckpointCertificate, Commit, CommitCertificate, ConsensusMessage, NewView,
    PrePrepare, Prepare, PrepareCertificate, PublicKey, Reply, Request, RequestBatch, Signature,
    Signed, ViewChange,
};
pub use shard::{shard_for_key, ShardEnvelope, ShardId};
pub use status::{
    NodeSnapshot, StatusEvent, StatusRequest, StatusResponse, StatusVerb, SNAPSHOT_VERSION,
};
