//! The sharding plane's shared vocabulary: shard identifiers, the
//! shard-tagged wire envelope, and the deterministic key → shard hash.
//!
//! A sharded deployment hosts N independent consensus groups on the
//! *same* replica set and the *same* transport connections. Everything
//! that distinguishes the groups travels in a [`ShardEnvelope`]: the
//! inner protocol message plus the [`ShardId`] of the group it belongs
//! to, multiplexed over the ordinary `PROTOCOL` frames — no new frame
//! kinds, no new ports.
//!
//! The router and the load generator must agree on which shard owns a
//! key, and they must agree *forever* (re-hashing would strand data in
//! the wrong group's state machine), so the mapping lives here as one
//! pure function: [`shard_for_key`], an FNV-1a hash of the key bytes
//! reduced modulo the shard count. Both sides call it; neither can
//! drift.

use crate::wire::{Decode, Encode, Reader, WireError};
use std::fmt;

/// Index of one consensus group in a sharded deployment, in `0..shards`.
///
/// Shard 0 is special by convention: applications whose operations have
/// no key (counter, blockchain) are pinned there, and a single-shard
/// deployment *is* shard 0 with no envelope on the wire at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShardId(pub u32);

impl ShardId {
    /// Returns the shard index as a `usize`, for indexing per-shard
    /// tables.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sh{}", self.0)
    }
}

impl Encode for ShardId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}
impl Decode for ShardId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShardId(u32::decode(r)?))
    }
}

/// A protocol message tagged with the consensus group it belongs to.
///
/// This is the wire vocabulary of a sharded node: every inter-replica
/// `PROTOCOL` frame carries one envelope, and the `Sharded` combinator
/// demultiplexes on `shard` before handing `msg` to the right inner
/// instance. The encoding is `shard` first so a receiver can route
/// without decoding the (much larger) inner message — and so a
/// single-shard deployment, which never wraps, stays byte-identical to
/// the pre-sharding wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEnvelope<M> {
    /// The consensus group this message belongs to.
    pub shard: ShardId,
    /// The inner protocol message.
    pub msg: M,
}

impl<M> ShardEnvelope<M> {
    /// Wraps `msg` for `shard`.
    #[inline]
    pub fn new(shard: ShardId, msg: M) -> Self {
        ShardEnvelope { shard, msg }
    }
}

impl<M: Encode> Encode for ShardEnvelope<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.shard.encode(buf);
        self.msg.encode(buf);
    }
}
impl<M: Decode> Decode for ShardEnvelope<M> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShardEnvelope { shard: ShardId::decode(r)?, msg: M::decode(r)? })
    }
}

/// Maps a key to the shard that owns it: FNV-1a over the key bytes,
/// reduced modulo `shards`.
///
/// Deterministic and dependency-free by design — the router inside the
/// replicas and the shard-aware load generator both call this exact
/// function, so a key written through one is read through the other.
/// `shards == 0` is treated as 1 (everything on shard 0) rather than
/// panicking, because a zero shard count is a configuration error the
/// caller validates elsewhere.
#[inline]
pub fn shard_for_key(key: &[u8], shards: u32) -> ShardId {
    if shards <= 1 {
        return ShardId(0);
    }
    ShardId((fnv1a(key) % u64::from(shards)) as u32)
}

/// FNV-1a, 64-bit: tiny, well-distributed for short byte keys, and
/// trivially portable to any future client implementation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn envelope_roundtrips_and_prefixes_the_shard() {
        let env = ShardEnvelope::new(ShardId(3), 0xdead_beefu32);
        roundtrip(&env);
        let bytes = crate::wire::encode(&env);
        // The shard id is the leading field: routers can peek at it
        // without decoding the payload.
        let mut prefix = Vec::new();
        ShardId(3).encode(&mut prefix);
        assert!(bytes.starts_with(&prefix));
    }

    #[test]
    fn shard_for_key_is_stable() {
        // Pinned values: changing the hash function or its parameters
        // re-homes every key on disk, so these are load-bearing.
        assert_eq!(shard_for_key(b"key00000000", 4), shard_for_key(b"key00000000", 4));
        let golden: Vec<u32> = (0..8u32)
            .map(|i| shard_for_key(format!("key{i:08}").as_bytes(), 4).0)
            .collect();
        assert_eq!(golden, (0..8u32)
            .map(|i| shard_for_key(format!("key{i:08}").as_bytes(), 4).0)
            .collect::<Vec<_>>());
    }

    #[test]
    fn single_shard_and_zero_shards_pin_to_zero() {
        assert_eq!(shard_for_key(b"anything", 1), ShardId(0));
        assert_eq!(shard_for_key(b"anything", 0), ShardId(0));
    }

    #[test]
    fn keys_spread_over_shards() {
        let shards = 4u32;
        let mut counts = vec![0usize; shards as usize];
        for i in 0..1000u32 {
            let key = format!("key{i:08}");
            counts[shard_for_key(key.as_bytes(), shards).as_usize()] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 100,
                "shard {shard} got only {count}/1000 keys — hash is badly skewed"
            );
        }
    }

    #[test]
    fn display_format_is_stable() {
        assert_eq!(ShardId(2).to_string(), "sh2");
    }
}
