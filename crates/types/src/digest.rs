//! The 32-byte digest type used to bind message and state contents.
//!
//! The digest *type* lives here so that messages can embed digests without
//! depending on the crypto crate; digest *computation* (SHA-256 over the
//! canonical wire encoding) lives in `splitbft-crypto`.

use crate::wire::{Decode, Encode, Reader, WireError};
use std::fmt;

/// A 32-byte cryptographic digest.
///
/// Digests bind request batches to `PrePrepare`/`Prepare`/`Commit` messages
/// and application snapshots to `Checkpoint` messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used for the genesis checkpoint and for no-op
    /// (null) request batches in view changes.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Returns the raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Builds a digest from raw bytes.
    #[inline]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// A short hex prefix for human-readable logs.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

impl Encode for Digest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Digest(r.take_array()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn zero_digest_is_all_zero() {
        assert_eq!(Digest::ZERO.as_bytes(), &[0u8; 32]);
    }

    #[test]
    fn display_is_full_hex() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0xab;
        bytes[31] = 0x01;
        let d = Digest::from_bytes(bytes);
        let s = d.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.starts_with("ab"));
        assert!(s.ends_with("01"));
    }

    #[test]
    fn short_is_four_bytes() {
        let d = Digest::from_bytes([0x12; 32]);
        assert_eq!(d.short(), "12121212");
    }

    #[test]
    fn wire_roundtrip() {
        roundtrip(&Digest::from_bytes([7u8; 32]));
        roundtrip(&Digest::ZERO);
    }
}
