//! Strongly-typed identifiers used across the protocol stack.
//!
//! Following the newtype guideline (C-NEWTYPE), every identifier that the
//! PBFT pseudocode treats as a bare integer gets its own type here, so that
//! a view number can never be confused with a sequence number and a replica
//! index can never be confused with a client index.

use crate::compartment::CompartmentKind;
use crate::config::ClusterConfig;
use crate::wire::{Decode, Encode, Reader, WireError};
use std::fmt;

/// Index of a replica in the cluster, in `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Returns the replica index as a `usize`, for indexing into per-replica
    /// tables.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a client of the replicated service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Returns the client index as a `usize`.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A view number. The view identifies the current primary via
/// [`View::primary`]; messages from earlier views are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct View(pub u64);

impl View {
    /// The first view of a fresh cluster (view 0).
    #[inline]
    pub fn initial() -> Self {
        View(0)
    }

    /// The next view (used when a view change is triggered).
    #[inline]
    pub fn next(self) -> Self {
        View(self.0 + 1)
    }

    /// The replica acting as primary in this view: `v mod n`, as in PBFT.
    #[inline]
    pub fn primary(self, config: &ClusterConfig) -> ReplicaId {
        ReplicaId((self.0 % config.n() as u64) as u32)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A sequence number assigned by the primary to order request batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// Sequence number zero, conventionally the genesis checkpoint.
    #[inline]
    pub fn zero() -> Self {
        SeqNum(0)
    }

    /// The next sequence number.
    #[inline]
    pub fn next(self) -> Self {
        SeqNum(self.0 + 1)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A client-side logical timestamp used to deduplicate requests: replicas
/// execute at most one request per `(client, timestamp)` pair and re-send the
/// cached reply for duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The next timestamp for the issuing client.
    #[inline]
    pub fn next(self) -> Self {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Globally unique identifier of a request: the issuing client plus its
/// logical timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId {
    /// The issuing client.
    pub client: ClientId,
    /// The client's logical timestamp for this request.
    pub timestamp: Timestamp,
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.timestamp)
    }
}

/// Identifier of one enclave: a compartment kind on a specific replica.
///
/// The paper distinguishes *compartments* (the logic shared by all enclaves
/// of one type) from *enclaves* (one compartment instance on one replica);
/// `EnclaveId` names the latter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnclaveId {
    /// The replica hosting this enclave.
    pub replica: ReplicaId,
    /// The compartment type this enclave runs.
    pub kind: CompartmentKind,
}

impl EnclaveId {
    /// Creates the identifier for `kind` on `replica`.
    #[inline]
    pub fn new(replica: ReplicaId, kind: CompartmentKind) -> Self {
        EnclaveId { replica, kind }
    }
}

impl fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.replica, self.kind)
    }
}

/// The principal that signed (or MACed) a message.
///
/// In plain PBFT every protocol message is signed by a *replica*. In
/// SplitBFT inter-compartment messages are signed by individual *enclaves*,
/// and client requests are authenticated by *clients*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SignerId {
    /// A whole replica (plain PBFT, hybrid protocols).
    Replica(ReplicaId),
    /// A single enclave (SplitBFT inter-compartment messages).
    Enclave(EnclaveId),
    /// A client of the service.
    Client(ClientId),
}

impl SignerId {
    /// The replica this signer lives on, if any.
    pub fn replica(&self) -> Option<ReplicaId> {
        match self {
            SignerId::Replica(r) => Some(*r),
            SignerId::Enclave(e) => Some(e.replica),
            SignerId::Client(_) => None,
        }
    }
}

impl fmt::Display for SignerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignerId::Replica(r) => write!(f, "{r}"),
            SignerId::Enclave(e) => write!(f, "{e}"),
            SignerId::Client(c) => write!(f, "{c}"),
        }
    }
}

// --- wire impls -----------------------------------------------------------

impl Encode for ReplicaId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}
impl Decode for ReplicaId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ReplicaId(u32::decode(r)?))
    }
}

impl Encode for ClientId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}
impl Decode for ClientId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ClientId(u32::decode(r)?))
    }
}

impl Encode for View {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}
impl Decode for View {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(View(u64::decode(r)?))
    }
}

impl Encode for SeqNum {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}
impl Decode for SeqNum {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SeqNum(u64::decode(r)?))
    }
}

impl Encode for Timestamp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}
impl Decode for Timestamp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Timestamp(u64::decode(r)?))
    }
}

impl Encode for RequestId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.timestamp.encode(buf);
    }
}
impl Decode for RequestId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RequestId { client: ClientId::decode(r)?, timestamp: Timestamp::decode(r)? })
    }
}

impl Encode for EnclaveId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.replica.encode(buf);
        self.kind.encode(buf);
    }
}
impl Decode for EnclaveId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(EnclaveId { replica: ReplicaId::decode(r)?, kind: CompartmentKind::decode(r)? })
    }
}

impl Encode for SignerId {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SignerId::Replica(r) => {
                buf.push(0);
                r.encode(buf);
            }
            SignerId::Enclave(e) => {
                buf.push(1);
                e.encode(buf);
            }
            SignerId::Client(c) => {
                buf.push(2);
                c.encode(buf);
            }
        }
    }
}
impl Decode for SignerId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(SignerId::Replica(ReplicaId::decode(r)?)),
            1 => Ok(SignerId::Enclave(EnclaveId::decode(r)?)),
            2 => Ok(SignerId::Client(ClientId::decode(r)?)),
            tag => Err(WireError::InvalidTag { ty: "SignerId", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn view_primary_rotates_through_replicas() {
        let cfg = ClusterConfig::new(4).unwrap();
        assert_eq!(View(0).primary(&cfg), ReplicaId(0));
        assert_eq!(View(1).primary(&cfg), ReplicaId(1));
        assert_eq!(View(4).primary(&cfg), ReplicaId(0));
        assert_eq!(View(7).primary(&cfg), ReplicaId(3));
    }

    #[test]
    fn next_increments() {
        assert_eq!(View(3).next(), View(4));
        assert_eq!(SeqNum(9).next(), SeqNum(10));
        assert_eq!(Timestamp(0).next(), Timestamp(1));
    }

    #[test]
    fn signer_replica_extraction() {
        let e = EnclaveId::new(ReplicaId(2), CompartmentKind::Execution);
        assert_eq!(SignerId::Enclave(e).replica(), Some(ReplicaId(2)));
        assert_eq!(SignerId::Replica(ReplicaId(1)).replica(), Some(ReplicaId(1)));
        assert_eq!(SignerId::Client(ClientId(9)).replica(), None);
    }

    #[test]
    fn ids_roundtrip_on_the_wire() {
        roundtrip(&ReplicaId(7));
        roundtrip(&ClientId(123));
        roundtrip(&View(u64::MAX));
        roundtrip(&SeqNum(42));
        roundtrip(&RequestId { client: ClientId(1), timestamp: Timestamp(99) });
        roundtrip(&EnclaveId::new(ReplicaId(3), CompartmentKind::Preparation));
        roundtrip(&SignerId::Client(ClientId(5)));
        roundtrip(&SignerId::Enclave(EnclaveId::new(
            ReplicaId(0),
            CompartmentKind::Confirmation,
        )));
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(ReplicaId(1).to_string(), "r1");
        assert_eq!(ClientId(2).to_string(), "c2");
        assert_eq!(View(3).to_string(), "v3");
        assert_eq!(SeqNum(4).to_string(), "s4");
        let e = EnclaveId::new(ReplicaId(1), CompartmentKind::Execution);
        assert_eq!(e.to_string(), "r1/exec");
        assert_eq!(
            RequestId { client: ClientId(1), timestamp: Timestamp(5) }.to_string(),
            "c1#t5"
        );
    }
}
