//! The three compartment types of the SplitBFT partitioning of PBFT.

use crate::wire::{Decode, Encode, Reader, WireError};
use std::fmt;

/// The compartment types that §3.2 of the paper derives from principles
/// P1–P5.
///
/// Every replica runs exactly one enclave of each kind; enclaves of the
/// same kind run the same logic, enclaves of different kinds share no code
/// beyond the message type definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CompartmentKind {
    /// Receives client requests and initializes their order distribution:
    /// sends/validates `PrePrepare`, sends `Prepare`, validates
    /// `ViewChange`s and sends/validates `NewView`.
    Preparation,
    /// Confirms that a request was prepared by a quorum: collects the
    /// prepare certificate and sends `Commit`; originates `ViewChange` on
    /// primary suspicion.
    Confirmation,
    /// Collects a quorum of confirmations, executes authenticated requests
    /// against the application state, replies to clients and generates
    /// checkpoints.
    Execution,
}

impl CompartmentKind {
    /// All compartment kinds, in pipeline order.
    pub const ALL: [CompartmentKind; 3] = [
        CompartmentKind::Preparation,
        CompartmentKind::Confirmation,
        CompartmentKind::Execution,
    ];

    /// A stable dense index in `0..3`, for per-compartment tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            CompartmentKind::Preparation => 0,
            CompartmentKind::Confirmation => 1,
            CompartmentKind::Execution => 2,
        }
    }

    /// The inverse of [`CompartmentKind::index`].
    ///
    /// Returns `None` for indices outside `0..3`.
    pub fn from_index(index: usize) -> Option<Self> {
        match index {
            0 => Some(CompartmentKind::Preparation),
            1 => Some(CompartmentKind::Confirmation),
            2 => Some(CompartmentKind::Execution),
            _ => None,
        }
    }
}

impl fmt::Display for CompartmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompartmentKind::Preparation => "prep",
            CompartmentKind::Confirmation => "conf",
            CompartmentKind::Execution => "exec",
        };
        f.write_str(s)
    }
}

impl Encode for CompartmentKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.index() as u8);
    }
}

impl Decode for CompartmentKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = u8::decode(r)?;
        CompartmentKind::from_index(tag as usize)
            .ok_or(WireError::InvalidTag { ty: "CompartmentKind", tag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, roundtrip};

    #[test]
    fn index_roundtrips() {
        for kind in CompartmentKind::ALL {
            assert_eq!(CompartmentKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(CompartmentKind::from_index(3), None);
    }

    #[test]
    fn all_is_pipeline_order() {
        assert_eq!(
            CompartmentKind::ALL,
            [
                CompartmentKind::Preparation,
                CompartmentKind::Confirmation,
                CompartmentKind::Execution
            ]
        );
    }

    #[test]
    fn wire_roundtrip_and_bad_tag() {
        for kind in CompartmentKind::ALL {
            roundtrip(&kind);
        }
        assert!(decode::<CompartmentKind>(&[9]).is_err());
    }
}
