//! Protocol-level error type shared by the agreement cores.

use crate::ids::{ReplicaId, SeqNum, View};
use crate::wire::WireError;
use std::fmt;

/// Why a message or configuration was rejected by a protocol core.
///
/// Rejections are normal-case events in a byzantine setting (a faulty peer
/// *will* send garbage), so this type is cheap to construct and carries
/// enough context to attribute the fault in logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A configuration parameter was invalid.
    InvalidConfig(String),
    /// The message failed to decode.
    Malformed(WireError),
    /// The signature or MAC did not verify.
    BadAuthenticator {
        /// The kind of message rejected.
        kind: &'static str,
    },
    /// The message's view did not match the receiver's current view.
    WrongView {
        /// View carried by the message.
        got: View,
        /// The receiver's current view.
        current: View,
    },
    /// The sequence number was outside the watermark window.
    OutOfWindow {
        /// Sequence number carried by the message.
        seq: SeqNum,
        /// Low watermark (last stable checkpoint).
        low: SeqNum,
        /// High watermark.
        high: SeqNum,
    },
    /// A message claimed to come from a replica outside the cluster.
    UnknownReplica(ReplicaId),
    /// The sender is not the primary of the indicated view.
    NotPrimary {
        /// The claimed sender.
        sender: ReplicaId,
        /// The view in question.
        view: View,
    },
    /// A second, conflicting proposal for the same view/sequence slot —
    /// evidence of equivocation.
    Equivocation {
        /// The view of the conflicting proposals.
        view: View,
        /// The slot of the conflicting proposals.
        seq: SeqNum,
    },
    /// A quorum certificate failed structural validation.
    BadCertificate {
        /// The kind of certificate rejected.
        kind: &'static str,
    },
    /// Durable replica state (a sealed checkpoint or WAL record) could
    /// not be restored: unsealing failed, bytes did not decode, or the
    /// content did not match its claimed digest. Recovery treats this as
    /// "no local state" and falls back to peer state transfer rather
    /// than aborting startup.
    CorruptState(String),
    /// Anything else worth reporting.
    Other(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ProtocolError::Malformed(e) => write!(f, "malformed message: {e}"),
            ProtocolError::BadAuthenticator { kind } => {
                write!(f, "bad authenticator on {kind}")
            }
            ProtocolError::WrongView { got, current } => {
                write!(f, "message for {got} but replica is in {current}")
            }
            ProtocolError::OutOfWindow { seq, low, high } => {
                write!(f, "{seq} outside watermark window ({low}, {high}]")
            }
            ProtocolError::UnknownReplica(r) => write!(f, "unknown replica {r}"),
            ProtocolError::NotPrimary { sender, view } => {
                write!(f, "{sender} is not the primary of {view}")
            }
            ProtocolError::Equivocation { view, seq } => {
                write!(f, "equivocating proposals detected at {view}/{seq}")
            }
            ProtocolError::BadCertificate { kind } => {
                write!(f, "structurally invalid {kind} certificate")
            }
            ProtocolError::CorruptState(reason) => {
                write!(f, "corrupt durable state: {reason}")
            }
            ProtocolError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Malformed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::WrongView { got: View(3), current: View(5) };
        assert!(e.to_string().contains("v3"));
        assert!(e.to_string().contains("v5"));

        let e = ProtocolError::OutOfWindow { seq: SeqNum(300), low: SeqNum(0), high: SeqNum(256) };
        assert!(e.to_string().contains("s300"));
    }

    #[test]
    fn corrupt_state_names_the_reason() {
        let e = ProtocolError::CorruptState("checkpoint-12 failed to unseal".into());
        assert!(e.to_string().contains("corrupt durable state"));
        assert!(e.to_string().contains("checkpoint-12"));
    }

    #[test]
    fn wire_error_converts_and_chains() {
        use std::error::Error;
        let e: ProtocolError = WireError::InvalidBool(7).into();
        assert!(matches!(e, ProtocolError::Malformed(_)));
        assert!(e.source().is_some());
    }
}
