//! A deterministic binary wire codec.
//!
//! SplitBFT compartments exchange serialized messages across the enclave
//! boundary and across the network, and digests are computed over the
//! serialized form. The codec therefore has to be *canonical*: encoding the
//! same value always produces the same bytes. We hand-roll a small
//! length-prefixed little-endian format rather than pulling in a
//! serialization framework, which keeps the trusted computing base minimal
//! and auditable (the paper's Table 2 counts serialization among the shared
//! TCB).
//!
//! # Format
//!
//! - fixed-width integers: little-endian
//! - `bool`: one byte, `0` or `1` (other values are a decode error)
//! - `Vec<T>`, `Bytes`, `String`: `u32` length prefix followed by elements
//! - `Option<T>`: one-byte discriminant then the payload
//! - enums: one-byte tag chosen by each type's manual implementation
//!
//! # Example
//!
//! ```
//! use splitbft_types::wire::{decode, encode, Decode, Encode};
//!
//! let v: Vec<u32> = vec![1, 2, 3];
//! let bytes = encode(&v);
//! let back: Vec<u32> = decode(&bytes).unwrap();
//! assert_eq!(v, back);
//! ```

use bytes::Bytes;
use std::fmt;

/// Maximum length accepted for any length-prefixed collection (16 MiB of
/// elements). Guards decoders against allocation bombs from untrusted input.
pub const MAX_COLLECTION_LEN: u32 = 16 * 1024 * 1024;

/// Errors produced when decoding untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// An enum tag byte did not match any variant.
    InvalidTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A bool byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A length prefix exceeded [`MAX_COLLECTION_LEN`].
    LengthOverflow(u32),
    /// A `String` payload was not valid UTF-8.
    InvalidUtf8,
    /// Trailing bytes remained after a top-level decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed} bytes, had {remaining}")
            }
            WireError::InvalidTag { ty, tag } => write!(f, "invalid tag {tag} for {ty}"),
            WireError::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            WireError::LengthOverflow(len) => write!(f, "length prefix {len} too large"),
            WireError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// Types that can be canonically serialized.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Returns the canonical encoding as a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can be decoded from untrusted bytes.
pub trait Decode: Sized {
    /// Decodes one value from the reader, advancing it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    value.to_wire()
}

/// Decodes exactly one value from `bytes`, rejecting trailing garbage.
pub fn decode<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// A cursor over a byte slice used by [`Decode`] implementations.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes exactly `n` bytes, or fails with [`WireError::UnexpectedEof`].
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes a fixed-size array.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
}
impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
}
impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_array()
    }
}

fn encode_len(len: usize, buf: &mut Vec<u8>) {
    debug_assert!(len <= MAX_COLLECTION_LEN as usize, "collection too large to encode");
    (len as u32).encode(buf);
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let len = u32::decode(r)?;
    if len > MAX_COLLECTION_LEN {
        return Err(WireError::LengthOverflow(len));
    }
    Ok(len as usize)
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        for item in self {
            item.encode(buf);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(r)?;
        // Do not pre-allocate `len` elements blindly: length is attacker
        // controlled. Cap the initial allocation and let push grow it.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        buf.extend_from_slice(self);
    }
}
impl Decode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(r)?;
        Ok(Bytes::copy_from_slice(r.take(len)?))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        buf.extend_from_slice(self.as_bytes());
    }
}
impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(r)?;
        String::from_utf8(r.take(len)?.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag { ty: "Option", tag }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}
impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Asserts that a value encodes and decodes back to itself. Used pervasively
/// in unit tests across the workspace.
///
/// # Panics
///
/// Panics if the round-trip fails or yields a different value.
pub fn roundtrip<T: Encode + Decode + PartialEq + fmt::Debug>(value: &T) {
    let bytes = encode(value);
    let back: T = decode(&bytes).expect("decode of freshly-encoded value");
    assert_eq!(&back, value, "wire round-trip changed the value");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u8::MAX);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&u128::MAX);
        roundtrip(&(-5i64));
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(encode(&1u32), vec![1, 0, 0, 0]);
        assert_eq!(encode(&0x0102u16), vec![2, 1]);
    }

    #[test]
    fn bool_rejects_garbage() {
        assert_eq!(decode::<bool>(&[2]), Err(WireError::InvalidBool(2)));
        assert_eq!(decode::<bool>(&[0]), Ok(false));
        assert_eq!(decode::<bool>(&[1]), Ok(true));
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&Bytes::from_static(b"hello world"));
        roundtrip(&String::from("sigma"));
        roundtrip(&Some(42u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&(7u8, String::from("x")));
    }

    #[test]
    fn eof_is_detected() {
        let bytes = encode(&0xffff_ffffu32);
        assert!(matches!(
            decode::<u64>(&bytes),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&1u8);
        bytes.push(0);
        assert_eq!(decode::<u8>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn length_bomb_rejected() {
        // A Vec<u8> claiming u32::MAX elements.
        let bytes = encode(&u32::MAX);
        assert_eq!(decode::<Vec<u8>>(&bytes), Err(WireError::LengthOverflow(u32::MAX)));
    }

    #[test]
    fn utf8_validated() {
        let mut bytes = Vec::new();
        encode_len(2, &mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode::<String>(&bytes), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn error_display_mentions_cause() {
        let e = WireError::InvalidTag { ty: "Foo", tag: 9 };
        assert!(e.to_string().contains("Foo"));
        assert!(WireError::UnexpectedEof { needed: 4, remaining: 1 }
            .to_string()
            .contains("needed 4"));
    }
}
