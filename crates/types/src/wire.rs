//! A deterministic binary wire codec.
//!
//! SplitBFT compartments exchange serialized messages across the enclave
//! boundary and across the network, and digests are computed over the
//! serialized form. The codec therefore has to be *canonical*: encoding the
//! same value always produces the same bytes. We hand-roll a small
//! length-prefixed little-endian format rather than pulling in a
//! serialization framework, which keeps the trusted computing base minimal
//! and auditable (the paper's Table 2 counts serialization among the shared
//! TCB).
//!
//! # Format
//!
//! - fixed-width integers: little-endian
//! - `bool`: one byte, `0` or `1` (other values are a decode error)
//! - `Vec<T>`, `Bytes`, `String`: `u32` length prefix followed by elements
//! - `Option<T>`: one-byte discriminant then the payload
//! - enums: one-byte tag chosen by each type's manual implementation
//!
//! # Framing
//!
//! On a stream transport (TCP) the codec needs message boundaries. Every
//! value travels inside a *frame*:
//!
//! ```text
//! offset  size  field      contents
//! 0       4     magic      b"SBFT" — connection sanity check
//! 4       1     version    WIRE_VERSION (currently 1)
//! 5       1     kind       transport-defined frame discriminator
//! 6       4     length     payload byte count, u32 little-endian
//! 10      len   payload    one canonically-encoded value
//! ```
//!
//! See [`FrameHeader`] for the invariants (magic match, exact version
//! match, `length <= MAX_FRAME_LEN`) and `splitbft-net` for the TCP
//! transport built on top.
//!
//! The `kind` byte is owned by the transport (`splitbft-net`'s
//! `frame_kind` module assigns them): peer/client hellos, protocol
//! messages, client requests and replies, plus the durability plane's
//! `STATE_REQUEST`/`STATE_RESPONSE` pair carrying
//! [`crate::durable::StateTransferRequest`] and
//! [`crate::durable::StateTransferResponse`]. Unknown kinds are skipped
//! by receivers, so new kinds are backward-compatible.
//!
//! # Example
//!
//! ```
//! use splitbft_types::wire::{decode, encode, Decode, Encode};
//!
//! let v: Vec<u32> = vec![1, 2, 3];
//! let bytes = encode(&v);
//! let back: Vec<u32> = decode(&bytes).unwrap();
//! assert_eq!(v, back);
//! ```

use bytes::Bytes;
use std::fmt;

/// Maximum length accepted for any length-prefixed collection (16 MiB of
/// elements). Guards decoders against allocation bombs from untrusted input.
pub const MAX_COLLECTION_LEN: u32 = 16 * 1024 * 1024;

/// Errors produced when decoding untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// An enum tag byte did not match any variant.
    InvalidTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A bool byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A length prefix exceeded [`MAX_COLLECTION_LEN`].
    LengthOverflow(u32),
    /// A `String` payload was not valid UTF-8.
    InvalidUtf8,
    /// Trailing bytes remained after a top-level decode.
    TrailingBytes(usize),
    /// A frame header did not start with [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// A frame header carried an unsupported wire version.
    VersionMismatch {
        /// The version this build speaks ([`WIRE_VERSION`]).
        expected: u8,
        /// The version found on the wire.
        got: u8,
    },
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed} bytes, had {remaining}")
            }
            WireError::InvalidTag { ty, tag } => write!(f, "invalid tag {tag} for {ty}"),
            WireError::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            WireError::LengthOverflow(len) => write!(f, "length prefix {len} too large"),
            WireError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::VersionMismatch { expected, got } => {
                write!(f, "wire version mismatch: expected {expected}, got {got}")
            }
            WireError::FrameTooLarge(len) => write!(f, "frame length {len} too large"),
        }
    }
}

impl std::error::Error for WireError {}

/// Types that can be canonically serialized.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Returns the canonical encoding as a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can be decoded from untrusted bytes.
pub trait Decode: Sized {
    /// Decodes one value from the reader, advancing it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    value.to_wire()
}

/// Decodes exactly one value from `bytes`, rejecting trailing garbage.
pub fn decode<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// A cursor over a byte slice used by [`Decode`] implementations.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes exactly `n` bytes, or fails with [`WireError::UnexpectedEof`].
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes a fixed-size array.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
}
impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
}
impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_array()
    }
}

fn encode_len(len: usize, buf: &mut Vec<u8>) {
    debug_assert!(len <= MAX_COLLECTION_LEN as usize, "collection too large to encode");
    (len as u32).encode(buf);
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let len = u32::decode(r)?;
    if len > MAX_COLLECTION_LEN {
        return Err(WireError::LengthOverflow(len));
    }
    Ok(len as usize)
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        for item in self {
            item.encode(buf);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(r)?;
        // Do not pre-allocate `len` elements blindly: length is attacker
        // controlled. Cap the initial allocation and let push grow it.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        buf.extend_from_slice(self);
    }
}
impl Decode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(r)?;
        Ok(Bytes::copy_from_slice(r.take(len)?))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_len(self.len(), buf);
        buf.extend_from_slice(self.as_bytes());
    }
}
impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(r)?;
        String::from_utf8(r.take(len)?.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag { ty: "Option", tag }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}
impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// The four magic bytes opening every frame on a stream transport.
///
/// A peer that connects to the wrong port (or a corrupted stream) fails
/// the magic check on the first header rather than mis-decoding garbage:
///
/// ```
/// use splitbft_types::wire::{FrameHeader, WireError, FRAME_HEADER_LEN};
///
/// let mut bogus = [0u8; FRAME_HEADER_LEN];
/// bogus[..4].copy_from_slice(b"HTTP");
/// assert_eq!(
///     FrameHeader::parse(&bogus),
///     Err(WireError::BadMagic(*b"HTTP")),
/// );
/// ```
pub const FRAME_MAGIC: [u8; 4] = *b"SBFT";

/// The wire-format version this build speaks.
///
/// The version is carried in every frame header and checked on receipt;
/// there is no negotiation — mixed-version clusters are refused at the
/// first frame:
///
/// ```
/// use splitbft_types::wire::{FrameHeader, WireError, WIRE_VERSION};
///
/// let mut header = FrameHeader { kind: 0, len: 0 }.encode();
/// header[4] = WIRE_VERSION + 1; // a future version
/// assert_eq!(
///     FrameHeader::parse(&header),
///     Err(WireError::VersionMismatch { expected: WIRE_VERSION, got: WIRE_VERSION + 1 }),
/// );
/// ```
pub const WIRE_VERSION: u8 = 1;

/// Maximum payload length a frame may declare (32 MiB). Bounds the
/// allocation a malicious or corrupted header can force on a receiver,
/// like [`MAX_COLLECTION_LEN`] does for in-payload collections.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Byte size of the fixed frame header: magic (4) + version (1) +
/// kind (1) + length (4).
pub const FRAME_HEADER_LEN: usize = 10;

/// The fixed-size header preceding every framed payload on a stream
/// transport.
///
/// Layout (all multi-byte fields little-endian, matching the codec):
///
/// ```text
/// magic[4] | version u8 | kind u8 | length u32
/// ```
///
/// `kind` is owned by the transport layer (`splitbft-net` uses it to
/// distinguish peer handshakes, protocol messages, client requests and
/// replies); the codec only round-trips it.
///
/// # Invariants
///
/// [`FrameHeader::parse`] accepts exactly the headers produced by
/// [`FrameHeader::encode`]:
///
/// ```
/// use splitbft_types::wire::{FrameHeader, FRAME_HEADER_LEN, FRAME_MAGIC, WIRE_VERSION};
///
/// let header = FrameHeader { kind: 2, len: 0xABCD };
/// let bytes = header.encode();
///
/// // Fixed size, magic prefix, version byte, little-endian length.
/// assert_eq!(bytes.len(), FRAME_HEADER_LEN);
/// assert_eq!(&bytes[..4], &FRAME_MAGIC);
/// assert_eq!(bytes[4], WIRE_VERSION);
/// assert_eq!(bytes[5], 2);
/// assert_eq!(&bytes[6..], &[0xCD, 0xAB, 0, 0]);
///
/// // Exact round-trip.
/// assert_eq!(FrameHeader::parse(&bytes), Ok(header));
/// ```
///
/// Oversized length prefixes are rejected before any allocation happens:
///
/// ```
/// use splitbft_types::wire::{FrameHeader, WireError, MAX_FRAME_LEN};
///
/// let huge = FrameHeader { kind: 0, len: MAX_FRAME_LEN + 1 }.encode();
/// assert_eq!(FrameHeader::parse(&huge), Err(WireError::FrameTooLarge(MAX_FRAME_LEN + 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Transport-defined frame discriminator.
    pub kind: u8,
    /// Payload length in bytes. Must not exceed [`MAX_FRAME_LEN`].
    pub len: u32,
}

impl FrameHeader {
    /// Serializes the header into its fixed wire form.
    pub fn encode(&self) -> [u8; FRAME_HEADER_LEN] {
        let mut out = [0u8; FRAME_HEADER_LEN];
        out[..4].copy_from_slice(&FRAME_MAGIC);
        out[4] = WIRE_VERSION;
        out[5] = self.kind;
        out[6..].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Validates and parses a header, enforcing the magic, version and
    /// length invariants documented on the type.
    pub fn parse(bytes: &[u8; FRAME_HEADER_LEN]) -> Result<Self, WireError> {
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&bytes[..4]);
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if bytes[4] != WIRE_VERSION {
            return Err(WireError::VersionMismatch { expected: WIRE_VERSION, got: bytes[4] });
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&bytes[6..]);
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(len));
        }
        Ok(FrameHeader { kind: bytes[5], len })
    }
}

/// Frames one already-encoded payload: header followed by payload bytes.
///
/// ```
/// use splitbft_types::wire::{frame, FRAME_HEADER_LEN};
///
/// let framed = frame(7, b"abc");
/// assert_eq!(framed.len(), FRAME_HEADER_LEN + 3);
/// assert_eq!(&framed[FRAME_HEADER_LEN..], b"abc");
/// ```
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`]; senders build payloads
/// themselves, so an oversized one is a local logic error, not untrusted
/// input.
pub fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN as usize, "frame payload too large");
    let header = FrameHeader { kind, len: payload.len() as u32 };
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(payload);
    out
}

/// A decoded frame header plus a **borrowed** view of its payload.
///
/// This is the zero-copy counterpart of the owned `read_frame` path: the
/// payload is a slice into the receive buffer, so handing it to a
/// [`Decode`] implementation costs no intermediate allocation per frame.
/// The view borrows the buffer it was parsed from and must be consumed
/// before more bytes are appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// Transport-defined frame discriminator (see [`FrameHeader::kind`]).
    pub kind: u8,
    /// The frame's payload, borrowed from the receive buffer.
    pub payload: &'a [u8],
}

/// Internal: locates one frame at the front of `buf` without building a
/// borrowed view, returning `(kind, payload_offset, payload_len, total)`.
/// `Ok(None)` means the buffer holds a valid but incomplete prefix.
fn frame_bounds(buf: &[u8]) -> Result<Option<(u8, usize, usize)>, WireError> {
    // Validate the magic/version prefix as early as it is available, so a
    // stream that is definitely garbage is rejected before the peer
    // finishes sending a full (possibly huge) "header".
    let prefix = buf.len().min(4);
    if buf[..prefix] != FRAME_MAGIC[..prefix] {
        let mut magic = [0u8; 4];
        magic[..prefix].copy_from_slice(&buf[..prefix]);
        return Err(WireError::BadMagic(magic));
    }
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header.copy_from_slice(&buf[..FRAME_HEADER_LEN]);
    let header = FrameHeader::parse(&header)?;
    let len = header.len as usize;
    if buf.len() < FRAME_HEADER_LEN + len {
        return Ok(None);
    }
    Ok(Some((header.kind, FRAME_HEADER_LEN, len)))
}

/// Parses one frame from the front of `buf` **without copying**.
///
/// Returns `Ok(None)` when `buf` holds a valid but incomplete frame
/// prefix (more bytes needed), or `Ok(Some((view, consumed)))` where
/// `view.payload` borrows `buf` and `consumed` is the total frame size
/// (header + payload). Header invariants (magic, version, length bound)
/// are enforced exactly as in [`FrameHeader::parse`]; a four-byte magic
/// mismatch is reported as soon as the mismatching byte arrives, even
/// before a full header is buffered.
///
/// ```
/// use splitbft_types::wire::{frame, parse_frame, FRAME_HEADER_LEN};
///
/// let bytes = frame(7, b"abc");
/// let (view, consumed) = parse_frame(&bytes).unwrap().unwrap();
/// assert_eq!((view.kind, view.payload), (7, &b"abc"[..]));
/// assert_eq!(consumed, FRAME_HEADER_LEN + 3);
/// assert_eq!(parse_frame(&bytes[..5]).unwrap(), None, "incomplete header");
/// ```
pub fn parse_frame(buf: &[u8]) -> Result<Option<(FrameView<'_>, usize)>, WireError> {
    match frame_bounds(buf)? {
        None => Ok(None),
        Some((kind, off, len)) => {
            Ok(Some((FrameView { kind, payload: &buf[off..off + len] }, off + len)))
        }
    }
}

/// An incremental frame reassembler for stream transports.
///
/// Bytes arrive in arbitrary chunks (nonblocking reads split frames at
/// any boundary); the assembler buffers them and yields complete frames
/// as **borrowed** [`FrameView`]s — no per-frame payload allocation.
/// Consumed bytes are compacted away lazily, so steady-state reassembly
/// reuses one buffer.
///
/// Two feeding styles:
/// - [`FrameAssembler::extend`] copies a chunk in (tests, simple loops);
/// - [`FrameAssembler::read_space`] + [`FrameAssembler::commit`] expose
///   the buffer's writable tail so `Read::read` can fill it directly —
///   the socket path copies each byte exactly once, kernel to buffer.
///
/// ```
/// use splitbft_types::wire::{frame, FrameAssembler};
///
/// let bytes = [frame(1, b"first"), frame(2, b"second")].concat();
/// let mut asm = FrameAssembler::new();
/// // Feed in awkward pieces: mid-header, mid-payload.
/// asm.extend(&bytes[..7]);
/// assert!(asm.next_frame().unwrap().is_none());
/// asm.extend(&bytes[7..20]);
/// let first = asm.next_frame().unwrap().unwrap();
/// assert_eq!((first.kind, first.payload), (1, &b"first"[..]));
/// asm.extend(&bytes[20..]);
/// let second = asm.next_frame().unwrap().unwrap();
/// assert_eq!((second.kind, second.payload), (2, &b"second"[..]));
/// assert!(asm.next_frame().unwrap().is_none());
/// ```
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix: bytes in `buf[..start]` belong to already-yielded
    /// frames and are reclaimed on the next compaction.
    start: usize,
    /// Valid bytes end here; `buf[end..]` is writable spare capacity.
    end: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending(&self) -> usize {
        self.end - self.start
    }

    /// Moves the unconsumed window to the buffer's front when the dead
    /// prefix dominates, bounding memory at ~2× the largest frame.
    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.start >= self.end - self.start || self.start >= 64 * 1024 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
    }

    /// Exposes at least `min` writable bytes at the buffer's tail for a
    /// direct `read(2)`-style fill; follow with [`FrameAssembler::commit`]
    /// to declare how many were actually written.
    pub fn read_space(&mut self, min: usize) -> &mut [u8] {
        self.compact();
        let needed = self.end + min.max(1);
        if self.buf.len() < needed {
            self.buf.resize(needed, 0);
        }
        &mut self.buf[self.end..]
    }

    /// Declares that `n` bytes of the slice returned by the last
    /// [`FrameAssembler::read_space`] call now hold stream data.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the exposed space — that would claim
    /// uninitialized bytes as stream content.
    pub fn commit(&mut self, n: usize) {
        assert!(self.end + n <= self.buf.len(), "commit past exposed read space");
        self.end += n;
    }

    /// Appends a chunk (copying it once into the buffer).
    pub fn extend(&mut self, bytes: &[u8]) {
        let space = self.read_space(bytes.len().max(1));
        space[..bytes.len()].copy_from_slice(bytes);
        self.commit(bytes.len());
    }

    /// Yields the next complete frame as a borrowed view, or `Ok(None)`
    /// until more bytes arrive. Errors are sticky in practice: a framing
    /// error (bad magic, version, oversized length) means the stream is
    /// unrecoverable and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<FrameView<'_>>, WireError> {
        match frame_bounds(&self.buf[self.start..self.end])? {
            None => Ok(None),
            Some((kind, off, len)) => {
                let payload_start = self.start + off;
                self.start += off + len;
                Ok(Some(FrameView { kind, payload: &self.buf[payload_start..payload_start + len] }))
            }
        }
    }
}

/// Asserts that a value encodes and decodes back to itself. Used pervasively
/// in unit tests across the workspace.
///
/// # Panics
///
/// Panics if the round-trip fails or yields a different value.
pub fn roundtrip<T: Encode + Decode + PartialEq + fmt::Debug>(value: &T) {
    let bytes = encode(value);
    let back: T = decode(&bytes).expect("decode of freshly-encoded value");
    assert_eq!(&back, value, "wire round-trip changed the value");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u8::MAX);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&u128::MAX);
        roundtrip(&(-5i64));
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(encode(&1u32), vec![1, 0, 0, 0]);
        assert_eq!(encode(&0x0102u16), vec![2, 1]);
    }

    #[test]
    fn bool_rejects_garbage() {
        assert_eq!(decode::<bool>(&[2]), Err(WireError::InvalidBool(2)));
        assert_eq!(decode::<bool>(&[0]), Ok(false));
        assert_eq!(decode::<bool>(&[1]), Ok(true));
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&Bytes::from_static(b"hello world"));
        roundtrip(&String::from("sigma"));
        roundtrip(&Some(42u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&(7u8, String::from("x")));
    }

    #[test]
    fn eof_is_detected() {
        let bytes = encode(&0xffff_ffffu32);
        assert!(matches!(
            decode::<u64>(&bytes),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&1u8);
        bytes.push(0);
        assert_eq!(decode::<u8>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn length_bomb_rejected() {
        // A Vec<u8> claiming u32::MAX elements.
        let bytes = encode(&u32::MAX);
        assert_eq!(decode::<Vec<u8>>(&bytes), Err(WireError::LengthOverflow(u32::MAX)));
    }

    #[test]
    fn utf8_validated() {
        let mut bytes = Vec::new();
        encode_len(2, &mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode::<String>(&bytes), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn frame_header_roundtrip() {
        for kind in [0u8, 1, 7, 255] {
            for len in [0u32, 1, MAX_FRAME_LEN] {
                let h = FrameHeader { kind, len };
                assert_eq!(FrameHeader::parse(&h.encode()), Ok(h));
            }
        }
    }

    #[test]
    fn frame_prepends_exact_header() {
        let framed = frame(3, b"xyz");
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&framed[..FRAME_HEADER_LEN]);
        assert_eq!(FrameHeader::parse(&header), Ok(FrameHeader { kind: 3, len: 3 }));
        assert_eq!(&framed[FRAME_HEADER_LEN..], b"xyz");
    }

    #[test]
    fn frame_header_rejects_corruption() {
        let good = FrameHeader { kind: 1, len: 4 }.encode();

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert!(matches!(FrameHeader::parse(&bad_magic), Err(WireError::BadMagic(_))));

        let mut bad_version = good;
        bad_version[4] = 0;
        assert_eq!(
            FrameHeader::parse(&bad_version),
            Err(WireError::VersionMismatch { expected: WIRE_VERSION, got: 0 })
        );

        let bomb = FrameHeader { kind: 1, len: u32::MAX };
        assert_eq!(FrameHeader::parse(&bomb.encode()), Err(WireError::FrameTooLarge(u32::MAX)));
    }

    #[test]
    fn parse_frame_yields_borrowed_payloads() {
        let bytes = frame(4, b"payload");
        let (view, consumed) = parse_frame(&bytes).unwrap().unwrap();
        assert_eq!(view.kind, 4);
        assert_eq!(view.payload, b"payload");
        assert_eq!(consumed, bytes.len());
        // The payload really borrows the input buffer (no copy).
        assert_eq!(view.payload.as_ptr(), bytes[FRAME_HEADER_LEN..].as_ptr());
    }

    #[test]
    fn parse_frame_reports_incomplete_prefixes_as_none() {
        let bytes = frame(9, &[0xAB; 100]);
        for cut in 0..bytes.len() {
            assert_eq!(parse_frame(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn parse_frame_rejects_garbage_before_full_header() {
        // One wrong byte in the magic is enough — no need to wait for the
        // remaining 9 header bytes.
        assert!(matches!(parse_frame(b"X"), Err(WireError::BadMagic(_))));
        assert!(matches!(parse_frame(b"SBFX"), Err(WireError::BadMagic(_))));
        let mut wrong_version = frame(0, b"");
        wrong_version[4] = WIRE_VERSION + 1;
        assert!(matches!(
            parse_frame(&wrong_version),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn assembler_reassembles_across_arbitrary_splits() {
        let stream = [frame(1, b"alpha"), frame(2, b""), frame(3, &[7u8; 300])].concat();
        // Feed one byte at a time — the worst split pattern.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for byte in &stream {
            asm.extend(std::slice::from_ref(byte));
            while let Some(view) = asm.next_frame().unwrap() {
                got.push((view.kind, view.payload.to_vec()));
            }
        }
        assert_eq!(
            got,
            vec![(1, b"alpha".to_vec()), (2, Vec::new()), (3, vec![7u8; 300])]
        );
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assembler_read_space_commit_matches_extend() {
        let stream = [frame(5, b"direct"), frame(6, b"fill")].concat();
        let mut asm = FrameAssembler::new();
        // Simulate a socket read landing directly in the buffer.
        let space = asm.read_space(stream.len());
        space[..stream.len()].copy_from_slice(&stream);
        asm.commit(stream.len());
        let first = asm.next_frame().unwrap().unwrap();
        assert_eq!((first.kind, first.payload), (5, &b"direct"[..]));
        let second = asm.next_frame().unwrap().unwrap();
        assert_eq!((second.kind, second.payload), (6, &b"fill"[..]));
    }

    #[test]
    #[should_panic(expected = "commit past exposed read space")]
    fn assembler_commit_past_space_panics() {
        let mut asm = FrameAssembler::new();
        asm.read_space(4);
        asm.commit(usize::MAX);
    }

    #[test]
    fn assembler_compacts_consumed_prefixes() {
        let mut asm = FrameAssembler::new();
        for round in 0..1_000 {
            asm.extend(&frame(1, &[round as u8; 64]));
            assert!(asm.next_frame().unwrap().is_some());
        }
        // 1000 × 74-byte frames passed through; the buffer must not have
        // grown anywhere near the total volume.
        assert!(asm.buf.len() < 16 * 1024, "buffer grew to {}", asm.buf.len());
    }

    #[test]
    fn error_display_mentions_cause() {
        let e = WireError::InvalidTag { ty: "Foo", tag: 9 };
        assert!(e.to_string().contains("Foo"));
        assert!(WireError::UnexpectedEof { needed: 4, remaining: 1 }
            .to_string()
            .contains("needed 4"));
    }
}
