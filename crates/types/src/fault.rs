//! Fault-injection control vocabulary.
//!
//! The chaos plane steers transport-level faults at runtime: an
//! orchestrator (`splitbft-node chaos`) connects to each replica and
//! sends [`FaultCommand`]s on a dedicated control frame kind
//! (`frame_kind::FAULT_CONTROL`). Commands mutate the node's
//! `FaultPlan` (in `splitbft-net`), which sits on the *send path* of
//! every peer link — so a partition declared here blocks protocol
//! traffic and state transfer alike, without touching protocol state.
//!
//! Commands are plain data in this crate (next to the rest of the wire
//! vocabulary) so that both the transport that obeys them and the
//! orchestrator that issues them speak the same encoding. Unknown frame
//! kinds are skipped by older receivers, which keeps the control frame
//! backward-compatible.

use crate::ids::ReplicaId;
use crate::wire::{Decode, Encode, Reader, WireError};

/// Per-link fault rule for the ordered pair `from → to`.
///
/// Percentages select frames deterministically from the link's seeded
/// decision stream (see `FaultPlan` in `splitbft-net`); they are not
/// wall-clock random. A rule with all percentages zero and a nonzero
/// `delay_ms` delays *every* frame by that amount (uniform extra
/// latency); a nonzero `reorder_percent` instead holds back only the
/// selected frames, letting their successors overtake them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkRule {
    /// Sending replica.
    pub from: ReplicaId,
    /// Receiving replica.
    pub to: ReplicaId,
    /// Percentage of frames dropped outright (0–100).
    pub drop_percent: u8,
    /// Percentage of frames delivered twice (0–100).
    pub duplicate_percent: u8,
    /// Percentage of frames held back by `delay_ms` so later frames
    /// overtake them (0–100).
    pub reorder_percent: u8,
    /// Holdback applied to delayed/reordered frames, in milliseconds.
    pub delay_ms: u32,
}

impl LinkRule {
    /// A rule that delivers everything unchanged (useful as a base for
    /// struct-update syntax in tests and schedules).
    pub fn clean(from: ReplicaId, to: ReplicaId) -> Self {
        LinkRule {
            from,
            to,
            drop_percent: 0,
            duplicate_percent: 0,
            reorder_percent: 0,
            delay_ms: 0,
        }
    }
}

impl Encode for LinkRule {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.from.encode(buf);
        self.to.encode(buf);
        buf.push(self.drop_percent);
        buf.push(self.duplicate_percent);
        buf.push(self.reorder_percent);
        self.delay_ms.encode(buf);
    }
}
impl Decode for LinkRule {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LinkRule {
            from: ReplicaId::decode(r)?,
            to: ReplicaId::decode(r)?,
            drop_percent: u8::decode(r)?,
            duplicate_percent: u8::decode(r)?,
            reorder_percent: u8::decode(r)?,
            delay_ms: u32::decode(r)?,
        })
    }
}

/// A runtime command against a node's fault plan.
///
/// Partitions are named so a schedule can layer several (e.g. isolate
/// the primary *and* degrade one backup link) and heal them
/// independently mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCommand {
    /// Install (or replace) the rule for one ordered link.
    SetRule(LinkRule),
    /// Remove every per-link rule (partitions stay).
    ClearRules,
    /// Open a named partition between two replica sets. With
    /// `symmetric` the cut blocks both directions; without it only
    /// `side_a → side_b` traffic is blocked (an asymmetric link
    /// failure).
    Partition {
        /// Name to heal this partition by.
        name: String,
        /// Replicas on the first side of the cut.
        side_a: Vec<ReplicaId>,
        /// Replicas on the second side of the cut.
        side_b: Vec<ReplicaId>,
        /// `true` blocks both directions; `false` only `side_a → side_b`.
        symmetric: bool,
    },
    /// Close the named partition.
    Heal {
        /// The partition to close.
        name: String,
    },
    /// Close every partition and remove every rule.
    HealAll,
}

impl Encode for FaultCommand {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FaultCommand::SetRule(rule) => {
                buf.push(1);
                rule.encode(buf);
            }
            FaultCommand::ClearRules => buf.push(2),
            FaultCommand::Partition { name, side_a, side_b, symmetric } => {
                buf.push(3);
                name.encode(buf);
                side_a.encode(buf);
                side_b.encode(buf);
                symmetric.encode(buf);
            }
            FaultCommand::Heal { name } => {
                buf.push(4);
                name.encode(buf);
            }
            FaultCommand::HealAll => buf.push(5),
        }
    }
}
impl Decode for FaultCommand {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(FaultCommand::SetRule(LinkRule::decode(r)?)),
            2 => Ok(FaultCommand::ClearRules),
            3 => Ok(FaultCommand::Partition {
                name: String::decode(r)?,
                side_a: Vec::decode(r)?,
                side_b: Vec::decode(r)?,
                symmetric: bool::decode(r)?,
            }),
            4 => Ok(FaultCommand::Heal { name: String::decode(r)? }),
            5 => Ok(FaultCommand::HealAll),
            tag => Err(WireError::InvalidTag { ty: "FaultCommand", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn commands_roundtrip() {
        roundtrip(&FaultCommand::SetRule(LinkRule {
            drop_percent: 30,
            duplicate_percent: 5,
            reorder_percent: 10,
            delay_ms: 40,
            ..LinkRule::clean(ReplicaId(0), ReplicaId(3))
        }));
        roundtrip(&FaultCommand::ClearRules);
        roundtrip(&FaultCommand::Partition {
            name: "primary-cut".into(),
            side_a: vec![ReplicaId(0)],
            side_b: vec![ReplicaId(1), ReplicaId(2), ReplicaId(3)],
            symmetric: true,
        });
        roundtrip(&FaultCommand::Heal { name: "primary-cut".into() });
        roundtrip(&FaultCommand::HealAll);
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let err = crate::wire::decode::<FaultCommand>(&[9]).unwrap_err();
        assert!(matches!(err, WireError::InvalidTag { ty: "FaultCommand", .. }));
    }
}
