//! The PBFT / SplitBFT message vocabulary.
//!
//! These are the message types exchanged between clients, replicas, and —
//! in SplitBFT — between enclaves of different compartments. Digest
//! *computation* and signature *checking* live in `splitbft-crypto`; this
//! module defines the data layout, the canonical signing bytes (with a
//! per-type domain tag so a signature over a `Prepare` can never be replayed
//! as a `Commit`), and the *structural* validity rules of quorum
//! certificates (distinct signers, matching views/sequence numbers/digests,
//! sufficient counts).

use crate::digest::Digest;
use crate::ids::{ClientId, ReplicaId, RequestId, SeqNum, SignerId, View};
use crate::wire::{Decode, Encode, Reader, WireError};
use bytes::Bytes;
use std::collections::BTreeSet;
use std::fmt;

// The STATE_TRANSFER vocabulary (requests/responses a recovering replica
// exchanges with peers) lives in [`crate::durable`] next to the WAL and
// checkpoint records it moves; it is re-exported here because it is part
// of the replica-to-replica message surface.
pub use crate::durable::{StateTransferRequest, StateTransferResponse};

/// An opaque 64-byte signature produced by `splitbft-crypto`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 64]);

impl Signature {
    /// The all-zero signature, useful as a placeholder in tests and for
    /// genesis artifacts that are validated structurally rather than
    /// cryptographically.
    pub const ZERO: Signature = Signature([0u8; 64]);
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({:02x}{:02x}…)", self.0[0], self.0[1])
    }
}

impl Default for Signature {
    fn default() -> Self {
        Signature::ZERO
    }
}

impl Encode for Signature {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }
}
impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Signature(r.take_array()?))
    }
}

/// An opaque 32-byte public key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PublicKey(pub [u8; 32]);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:02x}{:02x}…)", self.0[0], self.0[1])
    }
}

impl Encode for PublicKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }
}
impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PublicKey(r.take_array()?))
    }
}

/// Payloads that can be wrapped in [`Signed`]. The `TAG` provides domain
/// separation between message types in the bytes-to-sign.
pub trait MessagePayload: Encode {
    /// A unique per-type domain-separation tag.
    const TAG: u8;
}

/// A payload together with its signer and signature.
///
/// The signature covers `[TAG, encode(payload)]`; verification is performed
/// by `splitbft-crypto` against the signer's registered public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signed<T> {
    /// The signed payload.
    pub payload: T,
    /// Who signed it.
    pub signer: SignerId,
    /// The signature over [`Signed::signing_bytes`].
    pub signature: Signature,
}

impl<T: MessagePayload> Signed<T> {
    /// Assembles a signed message from its parts. The signature is taken at
    /// face value here; use `splitbft-crypto` to produce or verify it.
    pub fn new(payload: T, signer: SignerId, signature: Signature) -> Self {
        Signed { payload, signer, signature }
    }

    /// The canonical bytes the signature must cover: the domain tag followed
    /// by the canonical encoding of the payload.
    pub fn signing_bytes(payload: &T) -> Vec<u8> {
        let mut buf = vec![T::TAG];
        payload.encode(&mut buf);
        buf
    }
}

impl<T: Encode> Encode for Signed<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.payload.encode(buf);
        self.signer.encode(buf);
        self.signature.encode(buf);
    }
}
impl<T: Decode> Decode for Signed<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Signed {
            payload: T::decode(r)?,
            signer: SignerId::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

// --------------------------------------------------------------------------
// Client-facing messages
// --------------------------------------------------------------------------

/// A client request.
///
/// In SplitBFT's confidential mode `op` is a ciphertext under the session
/// key the client installed in the Execution enclaves during attestation;
/// only Execution enclaves can decrypt it. `auth` is an HMAC tag over the
/// request contents under the client's shared MAC key (the paper
/// authenticates client traffic with HMAC-SHA2 and reserves signatures for
/// inter-replica messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request identity (client + client-local timestamp).
    pub id: RequestId,
    /// The operation, possibly encrypted.
    pub op: Bytes,
    /// `true` if `op` is a ciphertext for the Execution compartment.
    pub encrypted: bool,
    /// HMAC tag authenticating `(id, op, encrypted)`.
    pub auth: [u8; 32],
}

impl Request {
    /// The bytes covered by the HMAC tag.
    pub fn auth_bytes(id: RequestId, op: &[u8], encrypted: bool) -> Vec<u8> {
        let mut buf = Vec::with_capacity(op.len() + 24);
        id.encode(&mut buf);
        buf.extend_from_slice(op);
        buf.push(encrypted as u8);
        buf
    }

    /// The issuing client.
    #[inline]
    pub fn client(&self) -> ClientId {
        self.id.client
    }
}

impl Encode for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.op.encode(buf);
        self.encrypted.encode(buf);
        self.auth.encode(buf);
    }
}
impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Request {
            id: RequestId::decode(r)?,
            op: Bytes::decode(r)?,
            encrypted: bool::decode(r)?,
            auth: r.take_array()?,
        })
    }
}

/// An ordered batch of client requests, the unit of agreement.
///
/// Unbatched operation is simply a batch of size one; batching is performed
/// by the untrusted environment (P1: batching is liveness-only logic).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestBatch {
    /// The requests in execution order.
    pub requests: Vec<Request>,
}

impl RequestBatch {
    /// Creates a batch from requests.
    pub fn new(requests: Vec<Request>) -> Self {
        RequestBatch { requests }
    }

    /// A batch with a single request.
    pub fn single(request: Request) -> Self {
        RequestBatch { requests: vec![request] }
    }

    /// The empty (null) batch used by new primaries to fill gaps after a
    /// view change.
    pub fn null() -> Self {
        RequestBatch { requests: Vec::new() }
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if this is a null batch.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

impl Encode for RequestBatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.requests.encode(buf);
    }
}
impl Decode for RequestBatch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RequestBatch { requests: Vec::decode(r)? })
    }
}

/// A reply sent by (the Execution compartment of) a replica to a client.
///
/// Clients accept a result once they collect `f + 1` matching replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The view in which the request was executed.
    pub view: View,
    /// Which request this reply answers.
    pub request: RequestId,
    /// The replying replica.
    pub replica: ReplicaId,
    /// The execution result, possibly encrypted for the client.
    pub result: Bytes,
    /// `true` if `result` is a ciphertext under the client session key.
    pub encrypted: bool,
    /// HMAC tag authenticating the reply to the client.
    pub auth: [u8; 32],
}

impl Reply {
    /// The bytes covered by the HMAC tag.
    pub fn auth_bytes(
        view: View,
        request: RequestId,
        replica: ReplicaId,
        result: &[u8],
        encrypted: bool,
    ) -> Vec<u8> {
        let mut buf = Vec::with_capacity(result.len() + 32);
        view.encode(&mut buf);
        request.encode(&mut buf);
        replica.encode(&mut buf);
        buf.extend_from_slice(result);
        buf.push(encrypted as u8);
        buf
    }
}

impl Encode for Reply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.request.encode(buf);
        self.replica.encode(buf);
        self.result.encode(buf);
        self.encrypted.encode(buf);
        self.auth.encode(buf);
    }
}
impl Decode for Reply {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Reply {
            view: View::decode(r)?,
            request: RequestId::decode(r)?,
            replica: ReplicaId::decode(r)?,
            result: Bytes::decode(r)?,
            encrypted: bool::decode(r)?,
            auth: r.take_array()?,
        })
    }
}

// --------------------------------------------------------------------------
// Agreement messages
// --------------------------------------------------------------------------

/// The primary's ordering proposal for one batch at one sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrePrepare {
    /// View in which the proposal is made.
    pub view: View,
    /// Proposed sequence number.
    pub seq: SeqNum,
    /// Digest of `batch` (over its canonical encoding).
    pub digest: Digest,
    /// The full request batch. `Prepare`/`Commit` carry only `digest`; the
    /// batch itself travels in the `PrePrepare`, which the broker duplicates
    /// into the input logs of all three compartments (§3.2).
    pub batch: RequestBatch,
}

impl MessagePayload for PrePrepare {
    const TAG: u8 = 1;
}

impl Encode for PrePrepare {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.seq.encode(buf);
        self.digest.encode(buf);
        self.batch.encode(buf);
    }
}
impl Decode for PrePrepare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PrePrepare {
            view: View::decode(r)?,
            seq: SeqNum::decode(r)?,
            digest: Digest::decode(r)?,
            batch: RequestBatch::decode(r)?,
        })
    }
}

/// A backup's vote that it accepted the primary's proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prepare {
    /// View of the proposal.
    pub view: View,
    /// Sequence number of the proposal.
    pub seq: SeqNum,
    /// Digest of the proposed batch.
    pub digest: Digest,
    /// The voting replica.
    pub replica: ReplicaId,
}

impl MessagePayload for Prepare {
    const TAG: u8 = 2;
}

impl Encode for Prepare {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.seq.encode(buf);
        self.digest.encode(buf);
        self.replica.encode(buf);
    }
}
impl Decode for Prepare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Prepare {
            view: View::decode(r)?,
            seq: SeqNum::decode(r)?,
            digest: Digest::decode(r)?,
            replica: ReplicaId::decode(r)?,
        })
    }
}

/// A replica's vote that the proposal is *prepared* (backed by a prepare
/// certificate) and may be committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// View of the proposal.
    pub view: View,
    /// Sequence number of the proposal.
    pub seq: SeqNum,
    /// Digest of the proposed batch.
    pub digest: Digest,
    /// The voting replica.
    pub replica: ReplicaId,
}

impl MessagePayload for Commit {
    const TAG: u8 = 3;
}

impl Encode for Commit {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.seq.encode(buf);
        self.digest.encode(buf);
        self.replica.encode(buf);
    }
}
impl Decode for Commit {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Commit {
            view: View::decode(r)?,
            seq: SeqNum::decode(r)?,
            digest: Digest::decode(r)?,
            replica: ReplicaId::decode(r)?,
        })
    }
}

/// A periodic proof of state: "my application state after executing
/// everything up to `seq` has digest `state_digest`".
///
/// As in the paper (§3.2), "a checkpoint message includes a snapshot of
/// the application state": carrying the snapshot lets lagging replicas and
/// compartments apply a stable checkpoint (state transfer) directly from
/// the certificate, and lets `NewView` messages distribute the checkpoint.
/// Receivers must check `digest_of(snapshot) == state_digest` before
/// restoring — a byzantine sender can attach a snapshot that does not
/// match its claimed digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The last executed sequence number covered by the snapshot.
    pub seq: SeqNum,
    /// Digest of the application snapshot (plus execution metadata).
    pub state_digest: Digest,
    /// The replica that took the snapshot.
    pub replica: ReplicaId,
    /// The serialized application snapshot itself.
    pub snapshot: Bytes,
}

impl MessagePayload for Checkpoint {
    const TAG: u8 = 4;
}

impl Encode for Checkpoint {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.state_digest.encode(buf);
        self.replica.encode(buf);
        self.snapshot.encode(buf);
    }
}
impl Decode for Checkpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Checkpoint {
            seq: SeqNum::decode(r)?,
            state_digest: Digest::decode(r)?,
            replica: ReplicaId::decode(r)?,
            snapshot: Bytes::decode(r)?,
        })
    }
}

// --------------------------------------------------------------------------
// Certificates
// --------------------------------------------------------------------------

/// A prepare certificate: one `PrePrepare` plus `2f` matching `Prepare`s
/// from distinct other replicas (P5: compartment transitions happen only on
/// such quorum decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareCertificate {
    /// The primary's signed proposal.
    pub pre_prepare: Signed<PrePrepare>,
    /// `2f` matching signed `Prepare`s from distinct backups.
    pub prepares: Vec<Signed<Prepare>>,
}

impl PrepareCertificate {
    /// The view the certificate belongs to.
    pub fn view(&self) -> View {
        self.pre_prepare.payload.view
    }

    /// The sequence number the certificate binds.
    pub fn seq(&self) -> SeqNum {
        self.pre_prepare.payload.seq
    }

    /// The batch digest the certificate binds.
    pub fn digest(&self) -> Digest {
        self.pre_prepare.payload.digest
    }

    /// Structural validity: `2f` prepares, all matching the pre-prepare's
    /// view/seq/digest, from distinct replicas, none of them the primary.
    ///
    /// Signature validity is checked separately by the caller with the key
    /// registry; structure and cryptography are deliberately decoupled so
    /// the model checker can exercise structure without a crypto dependency.
    pub fn is_structurally_valid(&self, f: usize) -> bool {
        if self.prepares.len() < 2 * f {
            return false;
        }
        let pp = &self.pre_prepare.payload;
        let mut seen = BTreeSet::new();
        for p in &self.prepares {
            let pl = &p.payload;
            if pl.view != pp.view || pl.seq != pp.seq || pl.digest != pp.digest {
                return false;
            }
            let Some(replica) = p.signer.replica() else { return false };
            if replica != pl.replica {
                return false;
            }
            if !seen.insert(replica) {
                return false;
            }
        }
        // The primary's vote is the PrePrepare itself; prepares must come
        // from other replicas.
        match self.pre_prepare.signer.replica() {
            Some(primary) => !seen.contains(&primary),
            None => false,
        }
    }
}

impl Encode for PrepareCertificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.pre_prepare.encode(buf);
        self.prepares.encode(buf);
    }
}
impl Decode for PrepareCertificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PrepareCertificate {
            pre_prepare: Signed::<PrePrepare>::decode(r)?,
            prepares: Vec::decode(r)?,
        })
    }
}

/// A commit certificate: `2f + 1` matching `Commit`s from distinct replicas.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitCertificate {
    /// The matching signed commits.
    pub commits: Vec<Signed<Commit>>,
}

impl CommitCertificate {
    /// Structural validity: at least `2f + 1` commits, all matching in
    /// view/seq/digest, from distinct replicas.
    pub fn is_structurally_valid(&self, f: usize) -> bool {
        if self.commits.len() < 2 * f + 1 {
            return false;
        }
        let first = &self.commits[0].payload;
        let mut seen = BTreeSet::new();
        for c in &self.commits {
            let pl = &c.payload;
            if pl.view != first.view || pl.seq != first.seq || pl.digest != first.digest {
                return false;
            }
            let Some(replica) = c.signer.replica() else { return false };
            if replica != pl.replica || !seen.insert(replica) {
                return false;
            }
        }
        true
    }

    /// The sequence number bound by the certificate, if non-empty.
    pub fn seq(&self) -> Option<SeqNum> {
        self.commits.first().map(|c| c.payload.seq)
    }
}

impl Encode for CommitCertificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.commits.encode(buf);
    }
}
impl Decode for CommitCertificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CommitCertificate { commits: Vec::decode(r)? })
    }
}

/// A checkpoint certificate: `2f + 1` matching `Checkpoint`s from distinct
/// replicas. The genesis certificate (sequence 0) is allowed to be empty.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointCertificate {
    /// The matching signed checkpoints.
    pub checkpoints: Vec<Signed<Checkpoint>>,
}

impl CheckpointCertificate {
    /// The certificate for the genesis state (stable sequence number 0).
    pub fn genesis() -> Self {
        CheckpointCertificate { checkpoints: Vec::new() }
    }

    /// The stable sequence number proven by the certificate (0 for genesis).
    pub fn seq(&self) -> SeqNum {
        self.checkpoints.first().map_or(SeqNum::zero(), |c| c.payload.seq)
    }

    /// The proven state digest, if any (genesis has none).
    pub fn state_digest(&self) -> Option<Digest> {
        self.checkpoints.first().map(|c| c.payload.state_digest)
    }

    /// Structural validity: empty (genesis) or `2f + 1` matching
    /// checkpoints from distinct replicas.
    pub fn is_structurally_valid(&self, f: usize) -> bool {
        if self.checkpoints.is_empty() {
            return true;
        }
        if self.checkpoints.len() < 2 * f + 1 {
            return false;
        }
        let first = &self.checkpoints[0].payload;
        let mut seen = BTreeSet::new();
        for c in &self.checkpoints {
            let pl = &c.payload;
            if pl.seq != first.seq || pl.state_digest != first.state_digest {
                return false;
            }
            let Some(replica) = c.signer.replica() else { return false };
            if replica != pl.replica || !seen.insert(replica) {
                return false;
            }
        }
        true
    }
}

impl Encode for CheckpointCertificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.checkpoints.encode(buf);
    }
}
impl Decode for CheckpointCertificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CheckpointCertificate { checkpoints: Vec::decode(r)? })
    }
}

// --------------------------------------------------------------------------
// View change
// --------------------------------------------------------------------------

/// A replica's (in SplitBFT: a Confirmation enclave's) declaration that the
/// primary of `new_view - 1` is suspected faulty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChange {
    /// The view the sender wants to move to.
    pub new_view: View,
    /// The sender's last stable checkpoint sequence number.
    pub stable_seq: SeqNum,
    /// Proof of the stable checkpoint (2f+1 `Checkpoint`s, empty for
    /// genesis).
    pub checkpoint_proof: CheckpointCertificate,
    /// Prepare certificates for every request the sender prepared above the
    /// stable checkpoint.
    pub prepared: Vec<PrepareCertificate>,
    /// The sending replica.
    pub replica: ReplicaId,
}

impl MessagePayload for ViewChange {
    const TAG: u8 = 5;
}

impl ViewChange {
    /// Structural validity of the embedded proofs.
    pub fn is_structurally_valid(&self, f: usize) -> bool {
        if !self.checkpoint_proof.is_structurally_valid(f) {
            return false;
        }
        if self.checkpoint_proof.seq() != self.stable_seq {
            return false;
        }
        self.prepared.iter().all(|cert| {
            cert.is_structurally_valid(f) && cert.seq() > self.stable_seq
        })
    }
}

impl Encode for ViewChange {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.new_view.encode(buf);
        self.stable_seq.encode(buf);
        self.checkpoint_proof.encode(buf);
        self.prepared.encode(buf);
        self.replica.encode(buf);
    }
}
impl Decode for ViewChange {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ViewChange {
            new_view: View::decode(r)?,
            stable_seq: SeqNum::decode(r)?,
            checkpoint_proof: CheckpointCertificate::decode(r)?,
            prepared: Vec::decode(r)?,
            replica: ReplicaId::decode(r)?,
        })
    }
}

/// The new primary's announcement of view `view`, carrying `2f + 1`
/// `ViewChange`s and the re-issued `PrePrepare`s for requests that were
/// prepared but not yet checkpointed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewView {
    /// The announced view.
    pub view: View,
    /// `2f + 1` signed view changes justifying the transition.
    pub view_changes: Vec<Signed<ViewChange>>,
    /// `PrePrepare`s re-issued in the new view (full batches, so Execution
    /// compartments receive the request payloads as well).
    pub pre_prepares: Vec<Signed<PrePrepare>>,
}

impl MessagePayload for NewView {
    const TAG: u8 = 6;
}

impl NewView {
    /// The highest stable checkpoint certificate among the view changes —
    /// the checkpoint every compartment applies when processing the
    /// `NewView` (handler 7' in the paper).
    pub fn max_checkpoint(&self) -> Option<&CheckpointCertificate> {
        self.view_changes
            .iter()
            .map(|vc| &vc.payload.checkpoint_proof)
            .max_by_key(|cp| cp.seq())
    }

    /// Structural validity: distinct view-change senders, all for this
    /// view, each internally valid; quorum size is checked by the caller
    /// (it needs `f`).
    pub fn is_structurally_valid(&self, f: usize) -> bool {
        if self.view_changes.len() < 2 * f + 1 {
            return false;
        }
        let mut seen = BTreeSet::new();
        for vc in &self.view_changes {
            if vc.payload.new_view != self.view {
                return false;
            }
            if !vc.payload.is_structurally_valid(f) {
                return false;
            }
            let Some(replica) = vc.signer.replica() else { return false };
            if replica != vc.payload.replica || !seen.insert(replica) {
                return false;
            }
        }
        self.pre_prepares.iter().all(|pp| pp.payload.view == self.view)
    }
}

impl Encode for NewView {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.view_changes.encode(buf);
        self.pre_prepares.encode(buf);
    }
}
impl Decode for NewView {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NewView {
            view: View::decode(r)?,
            view_changes: Vec::decode(r)?,
            pre_prepares: Vec::decode(r)?,
        })
    }
}

// --------------------------------------------------------------------------
// Top-level envelope
// --------------------------------------------------------------------------

/// Any inter-replica (or inter-compartment) protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum ConsensusMessage {
    /// The primary's ordering proposal.
    PrePrepare(Signed<PrePrepare>),
    /// A backup's acceptance vote.
    Prepare(Signed<Prepare>),
    /// A replica's commit vote.
    Commit(Signed<Commit>),
    /// A periodic state proof.
    Checkpoint(Signed<Checkpoint>),
    /// A primary-suspicion declaration.
    ViewChange(Signed<ViewChange>),
    /// The new primary's view announcement.
    NewView(Signed<NewView>),
}

impl ConsensusMessage {
    /// The signer of the wrapped message.
    pub fn signer(&self) -> SignerId {
        match self {
            ConsensusMessage::PrePrepare(m) => m.signer,
            ConsensusMessage::Prepare(m) => m.signer,
            ConsensusMessage::Commit(m) => m.signer,
            ConsensusMessage::Checkpoint(m) => m.signer,
            ConsensusMessage::ViewChange(m) => m.signer,
            ConsensusMessage::NewView(m) => m.signer,
        }
    }

    /// A short human-readable kind name for logs and traces.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ConsensusMessage::PrePrepare(_) => "PrePrepare",
            ConsensusMessage::Prepare(_) => "Prepare",
            ConsensusMessage::Commit(_) => "Commit",
            ConsensusMessage::Checkpoint(_) => "Checkpoint",
            ConsensusMessage::ViewChange(_) => "ViewChange",
            ConsensusMessage::NewView(_) => "NewView",
        }
    }
}

impl Encode for ConsensusMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ConsensusMessage::PrePrepare(m) => {
                buf.push(1);
                m.encode(buf);
            }
            ConsensusMessage::Prepare(m) => {
                buf.push(2);
                m.encode(buf);
            }
            ConsensusMessage::Commit(m) => {
                buf.push(3);
                m.encode(buf);
            }
            ConsensusMessage::Checkpoint(m) => {
                buf.push(4);
                m.encode(buf);
            }
            ConsensusMessage::ViewChange(m) => {
                buf.push(5);
                m.encode(buf);
            }
            ConsensusMessage::NewView(m) => {
                buf.push(6);
                m.encode(buf);
            }
        }
    }
}
impl Decode for ConsensusMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(ConsensusMessage::PrePrepare(Signed::decode(r)?)),
            2 => Ok(ConsensusMessage::Prepare(Signed::decode(r)?)),
            3 => Ok(ConsensusMessage::Commit(Signed::decode(r)?)),
            4 => Ok(ConsensusMessage::Checkpoint(Signed::decode(r)?)),
            5 => Ok(ConsensusMessage::ViewChange(Signed::decode(r)?)),
            6 => Ok(ConsensusMessage::NewView(Signed::decode(r)?)),
            tag => Err(WireError::InvalidTag { ty: "ConsensusMessage", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Timestamp;
    use crate::wire::roundtrip;

    fn req(client: u32, ts: u64) -> Request {
        Request {
            id: RequestId { client: ClientId(client), timestamp: Timestamp(ts) },
            op: Bytes::from_static(b"put k v"),
            encrypted: false,
            auth: [9u8; 32],
        }
    }

    fn signed_prepare(view: u64, seq: u64, digest: Digest, replica: u32) -> Signed<Prepare> {
        Signed::new(
            Prepare { view: View(view), seq: SeqNum(seq), digest, replica: ReplicaId(replica) },
            SignerId::Replica(ReplicaId(replica)),
            Signature::ZERO,
        )
    }

    fn signed_pre_prepare(view: u64, seq: u64, digest: Digest, primary: u32) -> Signed<PrePrepare> {
        Signed::new(
            PrePrepare {
                view: View(view),
                seq: SeqNum(seq),
                digest,
                batch: RequestBatch::single(req(1, seq)),
            },
            SignerId::Replica(ReplicaId(primary)),
            Signature::ZERO,
        )
    }

    #[test]
    fn all_messages_roundtrip() {
        let d = Digest::from_bytes([3u8; 32]);
        roundtrip(&req(1, 2));
        roundtrip(&RequestBatch::new(vec![req(1, 2), req(2, 3)]));
        roundtrip(&signed_pre_prepare(0, 1, d, 0));
        roundtrip(&signed_prepare(0, 1, d, 1));
        roundtrip(&Signed::new(
            Commit { view: View(0), seq: SeqNum(1), digest: d, replica: ReplicaId(2) },
            SignerId::Replica(ReplicaId(2)),
            Signature::ZERO,
        ));
        roundtrip(&Signed::new(
            Checkpoint { seq: SeqNum(100), state_digest: d, replica: ReplicaId(0), snapshot: Bytes::from_static(b"snap") },
            SignerId::Replica(ReplicaId(0)),
            Signature::ZERO,
        ));
        let vc = ViewChange {
            new_view: View(1),
            stable_seq: SeqNum(0),
            checkpoint_proof: CheckpointCertificate::genesis(),
            prepared: vec![PrepareCertificate {
                pre_prepare: signed_pre_prepare(0, 1, d, 0),
                prepares: vec![signed_prepare(0, 1, d, 1), signed_prepare(0, 1, d, 2)],
            }],
            replica: ReplicaId(1),
        };
        roundtrip(&Signed::new(vc.clone(), SignerId::Replica(ReplicaId(1)), Signature::ZERO));
        let nv = NewView {
            view: View(1),
            view_changes: vec![Signed::new(
                vc,
                SignerId::Replica(ReplicaId(1)),
                Signature::ZERO,
            )],
            pre_prepares: vec![signed_pre_prepare(1, 1, d, 1)],
        };
        roundtrip(&ConsensusMessage::NewView(Signed::new(
            nv,
            SignerId::Replica(ReplicaId(1)),
            Signature::ZERO,
        )));
    }

    #[test]
    fn signing_bytes_are_domain_separated() {
        let d = Digest::from_bytes([3u8; 32]);
        let p = Prepare { view: View(0), seq: SeqNum(1), digest: d, replica: ReplicaId(1) };
        let c = Commit { view: View(0), seq: SeqNum(1), digest: d, replica: ReplicaId(1) };
        // Same field contents, different domain tag.
        assert_ne!(Signed::signing_bytes(&p), Signed::signing_bytes(&c));
        assert_eq!(Signed::signing_bytes(&p)[0], Prepare::TAG);
        assert_eq!(Signed::signing_bytes(&c)[0], Commit::TAG);
    }

    #[test]
    fn prepare_certificate_structural_checks() {
        let d = Digest::from_bytes([1u8; 32]);
        let good = PrepareCertificate {
            pre_prepare: signed_pre_prepare(0, 5, d, 0),
            prepares: vec![signed_prepare(0, 5, d, 1), signed_prepare(0, 5, d, 2)],
        };
        assert!(good.is_structurally_valid(1));
        assert_eq!(good.seq(), SeqNum(5));
        assert_eq!(good.view(), View(0));
        assert_eq!(good.digest(), d);

        // Too few prepares.
        let short = PrepareCertificate {
            pre_prepare: signed_pre_prepare(0, 5, d, 0),
            prepares: vec![signed_prepare(0, 5, d, 1)],
        };
        assert!(!short.is_structurally_valid(1));

        // Duplicate sender.
        let dup = PrepareCertificate {
            pre_prepare: signed_pre_prepare(0, 5, d, 0),
            prepares: vec![signed_prepare(0, 5, d, 1), signed_prepare(0, 5, d, 1)],
        };
        assert!(!dup.is_structurally_valid(1));

        // Mismatched digest.
        let other = Digest::from_bytes([2u8; 32]);
        let mismatch = PrepareCertificate {
            pre_prepare: signed_pre_prepare(0, 5, d, 0),
            prepares: vec![signed_prepare(0, 5, other, 1), signed_prepare(0, 5, d, 2)],
        };
        assert!(!mismatch.is_structurally_valid(1));

        // Primary voting twice (prepare from the pre-prepare sender).
        let self_vote = PrepareCertificate {
            pre_prepare: signed_pre_prepare(0, 5, d, 0),
            prepares: vec![signed_prepare(0, 5, d, 0), signed_prepare(0, 5, d, 2)],
        };
        assert!(!self_vote.is_structurally_valid(1));

        // Signer / claimed-replica mismatch.
        let mut forged = signed_prepare(0, 5, d, 1);
        forged.signer = SignerId::Replica(ReplicaId(3));
        let forged_cert = PrepareCertificate {
            pre_prepare: signed_pre_prepare(0, 5, d, 0),
            prepares: vec![forged, signed_prepare(0, 5, d, 2)],
        };
        assert!(!forged_cert.is_structurally_valid(1));
    }

    #[test]
    fn commit_certificate_structural_checks() {
        let d = Digest::from_bytes([1u8; 32]);
        let mk = |r: u32| {
            Signed::new(
                Commit { view: View(0), seq: SeqNum(3), digest: d, replica: ReplicaId(r) },
                SignerId::Replica(ReplicaId(r)),
                Signature::ZERO,
            )
        };
        let good = CommitCertificate { commits: vec![mk(0), mk(1), mk(2)] };
        assert!(good.is_structurally_valid(1));
        assert_eq!(good.seq(), Some(SeqNum(3)));

        let short = CommitCertificate { commits: vec![mk(0), mk(1)] };
        assert!(!short.is_structurally_valid(1));

        let dup = CommitCertificate { commits: vec![mk(0), mk(1), mk(1)] };
        assert!(!dup.is_structurally_valid(1));
    }

    #[test]
    fn checkpoint_certificate_structural_checks() {
        let d = Digest::from_bytes([4u8; 32]);
        let mk = |r: u32| {
            Signed::new(
                Checkpoint { seq: SeqNum(10), state_digest: d, replica: ReplicaId(r), snapshot: Bytes::new() },
                SignerId::Replica(ReplicaId(r)),
                Signature::ZERO,
            )
        };
        assert!(CheckpointCertificate::genesis().is_structurally_valid(1));
        assert_eq!(CheckpointCertificate::genesis().seq(), SeqNum(0));

        let good = CheckpointCertificate { checkpoints: vec![mk(0), mk(1), mk(2)] };
        assert!(good.is_structurally_valid(1));
        assert_eq!(good.seq(), SeqNum(10));
        assert_eq!(good.state_digest(), Some(d));

        let short = CheckpointCertificate { checkpoints: vec![mk(0), mk(1)] };
        assert!(!short.is_structurally_valid(1));
    }

    #[test]
    fn view_change_validity_binds_checkpoint_seq() {
        let vc = ViewChange {
            new_view: View(1),
            stable_seq: SeqNum(5), // claims 5 but proof is genesis (0)
            checkpoint_proof: CheckpointCertificate::genesis(),
            prepared: Vec::new(),
            replica: ReplicaId(1),
        };
        assert!(!vc.is_structurally_valid(1));

        let ok = ViewChange { stable_seq: SeqNum(0), ..vc };
        assert!(ok.is_structurally_valid(1));
    }

    #[test]
    fn view_change_rejects_prepared_below_checkpoint() {
        let d = Digest::from_bytes([1u8; 32]);
        let cert = PrepareCertificate {
            pre_prepare: signed_pre_prepare(0, 0, d, 0),
            prepares: vec![signed_prepare(0, 0, d, 1), signed_prepare(0, 0, d, 2)],
        };
        // Prepared entry at seq 0 is not above stable_seq 0.
        let vc = ViewChange {
            new_view: View(1),
            stable_seq: SeqNum(0),
            checkpoint_proof: CheckpointCertificate::genesis(),
            prepared: vec![cert],
            replica: ReplicaId(1),
        };
        assert!(!vc.is_structurally_valid(1));
    }

    #[test]
    fn new_view_structural_checks() {
        let mk_vc = |r: u32| {
            Signed::new(
                ViewChange {
                    new_view: View(1),
                    stable_seq: SeqNum(0),
                    checkpoint_proof: CheckpointCertificate::genesis(),
                    prepared: Vec::new(),
                    replica: ReplicaId(r),
                },
                SignerId::Replica(ReplicaId(r)),
                Signature::ZERO,
            )
        };
        let nv = NewView {
            view: View(1),
            view_changes: vec![mk_vc(0), mk_vc(1), mk_vc(2)],
            pre_prepares: Vec::new(),
        };
        assert!(nv.is_structurally_valid(1));
        assert_eq!(nv.max_checkpoint().map(|c| c.seq()), Some(SeqNum(0)));

        let short = NewView {
            view: View(1),
            view_changes: vec![mk_vc(0), mk_vc(1)],
            pre_prepares: Vec::new(),
        };
        assert!(!short.is_structurally_valid(1));

        // PrePrepare for the wrong view.
        let bad_pp = NewView {
            view: View(1),
            view_changes: vec![mk_vc(0), mk_vc(1), mk_vc(2)],
            pre_prepares: vec![signed_pre_prepare(0, 1, Digest::ZERO, 1)],
        };
        assert!(!bad_pp.is_structurally_valid(1));
    }

    #[test]
    fn consensus_message_kind_names() {
        let d = Digest::ZERO;
        let m = ConsensusMessage::Prepare(signed_prepare(0, 1, d, 1));
        assert_eq!(m.kind_name(), "Prepare");
        assert_eq!(m.signer(), SignerId::Replica(ReplicaId(1)));
    }
}
