//! Operator status vocabulary: snapshots, journal events, and admin
//! verbs.
//!
//! The telemetry plane (`splitbft-obs` + the socket runtimes in
//! `splitbft-net`) answers `frame_kind::STATUS` requests on the client
//! port: tooling connects like a client, sends a [`StatusRequest`], and
//! receives a [`StatusResponse`] — a versioned [`NodeSnapshot`] of the
//! node's gauges, a suffix of its bounded [`StatusEvent`] journal, or
//! the outcome of an admin verb. Like [`crate::fault::FaultCommand`],
//! the types live here so the node that answers and the tooling that
//! asks (chaos harness, benches, operators) share one encoding, and
//! unknown frame kinds are skipped by older receivers so the new frame
//! stays backward-compatible.
//!
//! Read-only verbs ([`StatusVerb::Snapshot`], [`StatusVerb::Events`])
//! are always served. Admin verbs ([`StatusVerb::Drain`]) mutate the
//! node and are honored only when the node was launched with the status
//! admin gate enabled — the same opt-in stance as `FAULT_CONTROL` —
//! otherwise the node answers [`StatusResponse::Refused`] and closes
//! the connection.

use crate::wire::{Decode, Encode, Reader, WireError};

/// Version stamp of [`NodeSnapshot`]'s field set. Bump on any layout
/// change so pollers can reject snapshots they do not understand.
pub const SNAPSHOT_VERSION: u32 = 1;

/// What a STATUS connection asks of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusVerb {
    /// Return the current [`NodeSnapshot`].
    Snapshot,
    /// Return journal events with sequence number `>= since`, oldest
    /// first (bounded by the journal's retention window).
    Events {
        /// Lowest journal sequence number of interest.
        since: u64,
    },
    /// Admin: stop admitting client requests, finish in-flight batches,
    /// seal a checkpoint, flush the WAL, and let the process exit 0.
    Drain,
}

/// A STATUS request frame: one verb per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusRequest {
    /// The requested action.
    pub verb: StatusVerb,
}

/// One entry of the bounded structured event journal — the typed
/// replacement for the stderr marker lines the chaos harness used to
/// grep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatusEvent {
    /// The replica entered a new view.
    ViewChange {
        /// The view entered.
        view: u64,
    },
    /// A durable checkpoint was sealed to disk.
    CheckpointSealed {
        /// The checkpoint's sequence number.
        seq: u64,
    },
    /// Recovery restored a checkpoint (locally unsealed or agreed on by
    /// peers).
    CheckpointRestored {
        /// The restored checkpoint's sequence number.
        seq: u64,
        /// How many peers agreed on it (`0` for a local unseal).
        agreeing_peers: u64,
    },
    /// State transfer applied a log suffix from a peer.
    StateTransferApplied {
        /// Protocol messages applied from the suffix.
        messages: u64,
        /// Progress before the suffix was applied.
        from_progress: u64,
        /// Progress after the suffix was applied.
        to_progress: u64,
    },
    /// A `FAULT_CONTROL` command mutated the node's fault plan.
    FaultPlanApplied,
    /// A drain was requested (SIGTERM or the STATUS admin verb).
    DrainRequested,
    /// The drain finished: checkpoint sealed, WAL flushed, no pending
    /// requests; the process exits after emitting this.
    DrainCompleted,
    /// Crash recovery finished replaying the WAL at startup.
    Recovered {
        /// WAL events replayed.
        replayed_events: u64,
        /// Sequence of the restored checkpoint (`0` if none).
        checkpoint_seq: u64,
    },
}

/// A point-in-time copy of one node's gauges, served for
/// [`StatusVerb::Snapshot`].
///
/// All fields are monotone counters or instantaneous gauges mirrored
/// from the node's metrics registry; `version` is
/// [`SNAPSHOT_VERSION`] so pollers can detect layout changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The answering replica.
    pub replica: u32,
    /// The protocol's monotone progress counter (highest executed
    /// sequence number).
    pub progress: u64,
    /// The protocol's current view.
    pub view: u64,
    /// View changes completed since startup.
    pub view_changes: u64,
    /// Client requests accepted but not yet executed.
    pub pending_requests: u64,
    /// WAL fsyncs performed (`0` for non-durable protocols).
    pub fsyncs: u64,
    /// Current WAL length in bytes.
    pub wal_bytes: u64,
    /// Durable checkpoints sealed since startup.
    pub checkpoint_seals: u64,
    /// Peer-link reconnect attempts that succeeded since startup.
    pub reconnects: u64,
    /// Frames refused by bounded rings/queues since startup.
    pub ring_refusals: u64,
    /// Bytes read off the network since startup.
    pub bytes_in: u64,
    /// Bytes written to the network since startup.
    pub bytes_out: u64,
    /// High-water mark of the core event queue depth.
    pub queue_depth_high_water: u64,
    /// Per-shard progress (one entry per consensus group).
    pub shard_progress: Vec<u64>,
    /// Per-shard fsync counts.
    pub shard_fsyncs: Vec<u64>,
    /// `true` while startup recovery / state transfer is still running.
    pub recovering: bool,
    /// `true` once a drain was requested.
    pub draining: bool,
    /// `true` once the drain finished (checkpoint sealed, WAL flushed).
    pub drained: bool,
    /// Sequence number the journal will assign to its next event (i.e.
    /// events `< journal_head` exist or have been evicted).
    pub journal_head: u64,
}

/// A node's answer to one [`StatusRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatusResponse {
    /// Answer to [`StatusVerb::Snapshot`].
    Snapshot(NodeSnapshot),
    /// Answer to [`StatusVerb::Events`]: `(sequence, event)` pairs,
    /// oldest first.
    Events {
        /// The journal's next sequence number at answer time (poll
        /// cursor for the next request).
        head: u64,
        /// The matching events, oldest first.
        events: Vec<(u64, StatusEvent)>,
    },
    /// The admin verb was accepted and the drain has begun.
    DrainStarted,
    /// The verb requires the status admin gate, which this node was not
    /// launched with.
    Refused,
}

impl Encode for StatusVerb {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StatusVerb::Snapshot => buf.push(1),
            StatusVerb::Events { since } => {
                buf.push(2);
                since.encode(buf);
            }
            StatusVerb::Drain => buf.push(3),
        }
    }
}
impl Decode for StatusVerb {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(StatusVerb::Snapshot),
            2 => Ok(StatusVerb::Events { since: u64::decode(r)? }),
            3 => Ok(StatusVerb::Drain),
            tag => Err(WireError::InvalidTag { ty: "StatusVerb", tag }),
        }
    }
}

impl Encode for StatusRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.verb.encode(buf);
    }
}
impl Decode for StatusRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StatusRequest { verb: StatusVerb::decode(r)? })
    }
}

impl Encode for StatusEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StatusEvent::ViewChange { view } => {
                buf.push(1);
                view.encode(buf);
            }
            StatusEvent::CheckpointSealed { seq } => {
                buf.push(2);
                seq.encode(buf);
            }
            StatusEvent::CheckpointRestored { seq, agreeing_peers } => {
                buf.push(3);
                seq.encode(buf);
                agreeing_peers.encode(buf);
            }
            StatusEvent::StateTransferApplied { messages, from_progress, to_progress } => {
                buf.push(4);
                messages.encode(buf);
                from_progress.encode(buf);
                to_progress.encode(buf);
            }
            StatusEvent::FaultPlanApplied => buf.push(5),
            StatusEvent::DrainRequested => buf.push(6),
            StatusEvent::DrainCompleted => buf.push(7),
            StatusEvent::Recovered { replayed_events, checkpoint_seq } => {
                buf.push(8);
                replayed_events.encode(buf);
                checkpoint_seq.encode(buf);
            }
        }
    }
}
impl Decode for StatusEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(StatusEvent::ViewChange { view: u64::decode(r)? }),
            2 => Ok(StatusEvent::CheckpointSealed { seq: u64::decode(r)? }),
            3 => Ok(StatusEvent::CheckpointRestored {
                seq: u64::decode(r)?,
                agreeing_peers: u64::decode(r)?,
            }),
            4 => Ok(StatusEvent::StateTransferApplied {
                messages: u64::decode(r)?,
                from_progress: u64::decode(r)?,
                to_progress: u64::decode(r)?,
            }),
            5 => Ok(StatusEvent::FaultPlanApplied),
            6 => Ok(StatusEvent::DrainRequested),
            7 => Ok(StatusEvent::DrainCompleted),
            8 => Ok(StatusEvent::Recovered {
                replayed_events: u64::decode(r)?,
                checkpoint_seq: u64::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag { ty: "StatusEvent", tag }),
        }
    }
}

impl Encode for NodeSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.version.encode(buf);
        self.replica.encode(buf);
        self.progress.encode(buf);
        self.view.encode(buf);
        self.view_changes.encode(buf);
        self.pending_requests.encode(buf);
        self.fsyncs.encode(buf);
        self.wal_bytes.encode(buf);
        self.checkpoint_seals.encode(buf);
        self.reconnects.encode(buf);
        self.ring_refusals.encode(buf);
        self.bytes_in.encode(buf);
        self.bytes_out.encode(buf);
        self.queue_depth_high_water.encode(buf);
        self.shard_progress.encode(buf);
        self.shard_fsyncs.encode(buf);
        self.recovering.encode(buf);
        self.draining.encode(buf);
        self.drained.encode(buf);
        self.journal_head.encode(buf);
    }
}
impl Decode for NodeSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeSnapshot {
            version: u32::decode(r)?,
            replica: u32::decode(r)?,
            progress: u64::decode(r)?,
            view: u64::decode(r)?,
            view_changes: u64::decode(r)?,
            pending_requests: u64::decode(r)?,
            fsyncs: u64::decode(r)?,
            wal_bytes: u64::decode(r)?,
            checkpoint_seals: u64::decode(r)?,
            reconnects: u64::decode(r)?,
            ring_refusals: u64::decode(r)?,
            bytes_in: u64::decode(r)?,
            bytes_out: u64::decode(r)?,
            queue_depth_high_water: u64::decode(r)?,
            shard_progress: Vec::decode(r)?,
            shard_fsyncs: Vec::decode(r)?,
            recovering: bool::decode(r)?,
            draining: bool::decode(r)?,
            drained: bool::decode(r)?,
            journal_head: u64::decode(r)?,
        })
    }
}

impl Encode for StatusResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StatusResponse::Snapshot(snapshot) => {
                buf.push(1);
                snapshot.encode(buf);
            }
            StatusResponse::Events { head, events } => {
                buf.push(2);
                head.encode(buf);
                events.encode(buf);
            }
            StatusResponse::DrainStarted => buf.push(3),
            StatusResponse::Refused => buf.push(4),
        }
    }
}
impl Decode for StatusResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(StatusResponse::Snapshot(NodeSnapshot::decode(r)?)),
            2 => Ok(StatusResponse::Events {
                head: u64::decode(r)?,
                events: Vec::decode(r)?,
            }),
            3 => Ok(StatusResponse::DrainStarted),
            4 => Ok(StatusResponse::Refused),
            tag => Err(WireError::InvalidTag { ty: "StatusResponse", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn requests_roundtrip() {
        roundtrip(&StatusRequest { verb: StatusVerb::Snapshot });
        roundtrip(&StatusRequest { verb: StatusVerb::Events { since: 17 } });
        roundtrip(&StatusRequest { verb: StatusVerb::Drain });
    }

    #[test]
    fn events_roundtrip() {
        for event in [
            StatusEvent::ViewChange { view: 3 },
            StatusEvent::CheckpointSealed { seq: 200 },
            StatusEvent::CheckpointRestored { seq: 100, agreeing_peers: 2 },
            StatusEvent::StateTransferApplied {
                messages: 40,
                from_progress: 100,
                to_progress: 140,
            },
            StatusEvent::FaultPlanApplied,
            StatusEvent::DrainRequested,
            StatusEvent::DrainCompleted,
            StatusEvent::Recovered { replayed_events: 12, checkpoint_seq: 100 },
        ] {
            roundtrip(&event);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let snapshot = NodeSnapshot {
            version: SNAPSHOT_VERSION,
            replica: 2,
            progress: 1234,
            view: 1,
            view_changes: 1,
            pending_requests: 7,
            fsyncs: 99,
            wal_bytes: 4096,
            checkpoint_seals: 6,
            reconnects: 2,
            ring_refusals: 5,
            bytes_in: 1 << 20,
            bytes_out: 1 << 21,
            queue_depth_high_water: 37,
            shard_progress: vec![600, 634],
            shard_fsyncs: vec![50, 49],
            recovering: false,
            draining: true,
            drained: false,
            journal_head: 42,
        };
        roundtrip(&StatusResponse::Snapshot(snapshot));
        roundtrip(&StatusResponse::Events {
            head: 9,
            events: vec![
                (7, StatusEvent::ViewChange { view: 2 }),
                (8, StatusEvent::CheckpointSealed { seq: 300 }),
            ],
        });
        roundtrip(&StatusResponse::DrainStarted);
        roundtrip(&StatusResponse::Refused);
    }

    #[test]
    fn unknown_tags_are_rejected() {
        for bytes in [&[0u8][..], &[9u8][..]] {
            assert!(matches!(
                crate::wire::decode::<StatusVerb>(bytes),
                Err(WireError::InvalidTag { ty: "StatusVerb", .. })
            ));
            assert!(matches!(
                crate::wire::decode::<StatusEvent>(bytes),
                Err(WireError::InvalidTag { ty: "StatusEvent", .. })
            ));
            assert!(matches!(
                crate::wire::decode::<StatusResponse>(bytes),
                Err(WireError::InvalidTag { ty: "StatusResponse", .. })
            ));
        }
    }
}
