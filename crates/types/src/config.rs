//! Cluster, batching and timer configuration.

use crate::error::ProtocolError;
use crate::ids::ReplicaId;

/// Static cluster configuration shared by every replica and compartment.
///
/// Per the paper's system model this is one of the constant configuration
/// parameters that "can be safely loaded into enclaves" at startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    n: usize,
    /// Sequence-number window above the last stable checkpoint within which
    /// a replica accepts proposals (the PBFT high-watermark window).
    pub window: u64,
    /// Take a checkpoint every `checkpoint_interval` sequence numbers.
    pub checkpoint_interval: u64,
}

impl ClusterConfig {
    /// Creates a configuration for `n` replicas.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] if `n < 4`: byzantine
    /// agreement needs `n >= 3f + 1` with `f >= 1`.
    pub fn new(n: usize) -> Result<Self, ProtocolError> {
        if n < 4 {
            return Err(ProtocolError::InvalidConfig(format!(
                "BFT requires at least 4 replicas, got {n}"
            )));
        }
        Ok(ClusterConfig { n, window: 256, checkpoint_interval: 128 })
    }

    /// Overrides the checkpoint interval (and keeps the window at twice the
    /// interval, the usual PBFT setting).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = interval;
        self.window = interval * 2;
        self
    }

    /// Total number of replicas `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of tolerated faulty replicas: `f = ⌊(n − 1) / 3⌋`.
    #[inline]
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// The byzantine quorum size `2f + 1`.
    #[inline]
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// Votes needed from *other* replicas for a prepare certificate (`2f`,
    /// the pre-prepare supplies the primary's vote).
    #[inline]
    pub fn prepare_quorum(&self) -> usize {
        2 * self.f()
    }

    /// Matching replies a client needs before accepting a result (`f + 1`).
    #[inline]
    pub fn reply_quorum(&self) -> usize {
        self.f() + 1
    }

    /// Iterator over all replica identifiers.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.n as u32).map(ReplicaId)
    }

    /// `true` if `id` is a member of this cluster.
    pub fn contains(&self, id: ReplicaId) -> bool {
        (id.0 as usize) < self.n
    }
}

/// Request batching configuration, applied by the untrusted environment.
///
/// Mirrors the paper's evaluation setup: "we create batches on either
/// receiving 200 requests or expiration of a 10 ms timeout".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Close a non-empty batch after this many microseconds even if it is
    /// not full.
    pub timeout_us: u64,
}

impl BatchConfig {
    /// The paper's batched configuration: 200 requests or 10 ms.
    pub fn paper_batched() -> Self {
        BatchConfig { max_batch: 200, timeout_us: 10_000 }
    }

    /// Unbatched operation: every request forms its own batch.
    pub fn unbatched() -> Self {
        BatchConfig { max_batch: 1, timeout_us: 0 }
    }

    /// `true` if batching is effectively disabled.
    pub fn is_unbatched(&self) -> bool {
        self.max_batch <= 1
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::unbatched()
    }
}

/// Timer configuration for the untrusted environment (P1: timers are
/// liveness-only and stay outside the enclaves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerConfig {
    /// View-change timeout: how long a replica waits for a request it has
    /// seen to be executed before suspecting the primary (microseconds).
    pub view_change_timeout_us: u64,
    /// Multiplier applied to the timeout after each failed view change,
    /// PBFT's exponential back-off.
    pub backoff_factor: u32,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig { view_change_timeout_us: 500_000, backoff_factor: 2 }
    }
}

impl TimerConfig {
    /// The timeout for attempt number `attempt` (0-based), with exponential
    /// back-off, saturating at `u64::MAX`.
    pub fn timeout_for_attempt(&self, attempt: u32) -> u64 {
        let factor = (self.backoff_factor as u64).saturating_pow(attempt);
        self.view_change_timeout_us.saturating_mul(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic() {
        let c4 = ClusterConfig::new(4).unwrap();
        assert_eq!((c4.n(), c4.f(), c4.quorum(), c4.prepare_quorum(), c4.reply_quorum()),
                   (4, 1, 3, 2, 2));

        let c7 = ClusterConfig::new(7).unwrap();
        assert_eq!((c7.f(), c7.quorum()), (2, 5));

        let c10 = ClusterConfig::new(10).unwrap();
        assert_eq!((c10.f(), c10.quorum()), (3, 7));
    }

    #[test]
    fn too_small_cluster_rejected() {
        for n in 0..4 {
            assert!(ClusterConfig::new(n).is_err());
        }
    }

    #[test]
    fn replica_iteration_and_membership() {
        let c = ClusterConfig::new(4).unwrap();
        let ids: Vec<_> = c.replicas().collect();
        assert_eq!(ids, vec![ReplicaId(0), ReplicaId(1), ReplicaId(2), ReplicaId(3)]);
        assert!(c.contains(ReplicaId(3)));
        assert!(!c.contains(ReplicaId(4)));
    }

    #[test]
    fn checkpoint_interval_builder() {
        let c = ClusterConfig::new(4).unwrap().with_checkpoint_interval(10);
        assert_eq!(c.checkpoint_interval, 10);
        assert_eq!(c.window, 20);
    }

    #[test]
    fn batch_config_presets() {
        assert!(BatchConfig::unbatched().is_unbatched());
        let b = BatchConfig::paper_batched();
        assert_eq!(b.max_batch, 200);
        assert_eq!(b.timeout_us, 10_000);
        assert!(!b.is_unbatched());
    }

    #[test]
    fn timer_backoff() {
        let t = TimerConfig { view_change_timeout_us: 100, backoff_factor: 2 };
        assert_eq!(t.timeout_for_attempt(0), 100);
        assert_eq!(t.timeout_for_attempt(1), 200);
        assert_eq!(t.timeout_for_attempt(3), 800);
        // Saturation rather than overflow.
        assert_eq!(t.timeout_for_attempt(200), u64::MAX);
    }
}
