//! The durable-state vocabulary of the durability plane.
//!
//! The paper's compartmentalized replicas survive host restarts by
//! persisting their per-compartment secrets and checkpoints through TEE
//! sealing (§4 "Enclave recovery"). This module defines the
//! protocol-agnostic records that the `splitbft-store` crate writes to a
//! replica's write-ahead log and sealed checkpoint files, and the
//! `STATE_TRANSFER` request/response pair a restarted or lagging replica
//! exchanges with its peers over the socket transport.
//!
//! Everything here is wire-encodable with the canonical codec
//! ([`crate::wire`]): WAL records and sealed blobs are byte-for-byte
//! deterministic, and the state-transfer messages travel in their own
//! frame kinds next to the regular protocol traffic.
//!
//! # Example: the WAL's record vocabulary
//!
//! A [`DurableEvent`] encodes canonically and decodes from untrusted
//! bytes — the payload each `splitbft-store` WAL record carries:
//!
//! ```
//! use splitbft_types::wire::{decode, encode};
//! use splitbft_types::{DurableEvent, SeqNum, View};
//!
//! let event = DurableEvent::EnteredView { view: View(3) };
//! let bytes = encode(&event);
//! assert_eq!(decode::<DurableEvent>(&bytes).unwrap(), event);
//!
//! // Canonical: re-encoding the decoded value is byte-identical, so
//! // WAL records (and their CRCs) are deterministic across replicas.
//! assert_eq!(encode(&decode::<DurableEvent>(&bytes).unwrap()), bytes);
//!
//! // Garbage never panics — it is a decode error, handled by replay.
//! assert!(decode::<DurableEvent>(&[0xFF, 0x01, 0x02]).is_err());
//!
//! // The checkpoint GC marker bounds the log: records at or below a
//! // stable checkpoint are dropped once it is sealed.
//! let marker = DurableEvent::StableCheckpoint { seq: SeqNum(128) };
//! assert!(matches!(
//!     decode::<DurableEvent>(&encode(&marker)).unwrap(),
//!     DurableEvent::StableCheckpoint { seq: SeqNum(128) },
//! ));
//! ```

use crate::digest::Digest;
use crate::ids::{ReplicaId, SeqNum, View};
use crate::message::RequestBatch;
use crate::wire::{Decode, Encode, Reader, WireError};
use bytes::Bytes;

/// A consensus event that must be durable *before* the replica acts on
/// it (sends messages or replies derived from it).
///
/// Each protocol core buffers these as it processes inputs; the hosting
/// runtime drains and appends them to the write-ahead log — with an
/// fsync — before the corresponding outputs reach the network. On
/// restart the events are replayed into a fresh state machine in log
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableEvent {
    /// A proposal was accepted at `(view, seq)`. Replay restores the
    /// high-water mark of assigned sequence numbers so a restarted
    /// primary never reuses a slot it already proposed.
    Accepted {
        /// View of the accepted proposal.
        view: View,
        /// Slot of the accepted proposal.
        seq: SeqNum,
        /// Digest of the accepted batch.
        digest: Digest,
    },
    /// The batch at `seq` reached its commit point and was executed.
    /// Replay re-executes the batch against the application, restoring
    /// app state and the per-client reply cache beyond the last sealed
    /// checkpoint.
    Committed {
        /// The executed slot.
        seq: SeqNum,
        /// The full batch, so replay needs no peer contact.
        batch: RequestBatch,
    },
    /// The replica entered `view`. Replay restores the view so a
    /// restarted replica speaks the cluster's current dialect.
    EnteredView {
        /// The entered view.
        view: View,
    },
    /// A trusted monotonic counter issued `counter` (the hybrid
    /// protocol's USIG). Replay advances the restored counter past every
    /// value ever issued, so a restarted replica cannot equivocate by
    /// re-issuing a used counter value.
    CounterIssued {
        /// The issued counter value.
        counter: u64,
    },
    /// The checkpoint at `seq` became stable. This is the WAL
    /// garbage-collection point: once the matching sealed checkpoint is
    /// on disk, records at or below `seq` are dropped from the log.
    StableCheckpoint {
        /// The stable slot.
        seq: SeqNum,
    },
    /// The consensus group this WAL belongs to in a sharded deployment.
    /// Written once near the head of each per-shard log so a recovered
    /// directory self-identifies: replaying shard 1's log into shard 0's
    /// state machine is detected instead of silently corrupting state.
    ShardTag {
        /// The owning shard.
        shard: crate::shard::ShardId,
    },
}

impl Encode for DurableEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DurableEvent::Accepted { view, seq, digest } => {
                buf.push(1);
                view.encode(buf);
                seq.encode(buf);
                digest.encode(buf);
            }
            DurableEvent::Committed { seq, batch } => {
                buf.push(2);
                seq.encode(buf);
                batch.encode(buf);
            }
            DurableEvent::EnteredView { view } => {
                buf.push(3);
                view.encode(buf);
            }
            DurableEvent::CounterIssued { counter } => {
                buf.push(4);
                counter.encode(buf);
            }
            DurableEvent::StableCheckpoint { seq } => {
                buf.push(5);
                seq.encode(buf);
            }
            DurableEvent::ShardTag { shard } => {
                buf.push(6);
                shard.encode(buf);
            }
        }
    }
}
impl Decode for DurableEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            1 => Ok(DurableEvent::Accepted {
                view: View::decode(r)?,
                seq: SeqNum::decode(r)?,
                digest: Digest::decode(r)?,
            }),
            2 => Ok(DurableEvent::Committed {
                seq: SeqNum::decode(r)?,
                batch: RequestBatch::decode(r)?,
            }),
            3 => Ok(DurableEvent::EnteredView { view: View::decode(r)? }),
            4 => Ok(DurableEvent::CounterIssued { counter: u64::decode(r)? }),
            5 => Ok(DurableEvent::StableCheckpoint { seq: SeqNum::decode(r)? }),
            6 => Ok(DurableEvent::ShardTag { shard: crate::shard::ShardId::decode(r)? }),
            tag => Err(WireError::InvalidTag { ty: "DurableEvent", tag }),
        }
    }
}

/// A protocol's durable state at a stable checkpoint: the unit that is
/// sealed to disk locally and offered to lagging peers over
/// `STATE_TRANSFER`.
///
/// `state` is protocol-defined and opaque at this layer:
///
/// - the PBFT baseline and the SplitBFT broker encode their stable
///   [`crate::message::CheckpointCertificate`] (self-authenticating:
///   `2f + 1` signed `Checkpoint`s carrying the snapshot);
/// - the hybrid encodes its application snapshot plus the
///   replica-independent core of its reply cache.
///
/// `digest` binds the checkpointed *content* in a replica-independent
/// way (for certificates, the certified state digest — not a hash of
/// the bytes, which differ per holder by signer subset). A recovering
/// replica accepts a peer checkpoint only when `f + 1` peers agree on
/// `(seq, digest)`, so at least one correct replica vouches for it; the
/// protocol re-validates internally on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableCheckpoint {
    /// The sequence number (or hybrid counter value) the state covers.
    pub seq: SeqNum,
    /// Replica-independent digest of the checkpointed content.
    pub digest: Digest,
    /// The protocol-defined state bytes.
    pub state: Bytes,
}

impl Encode for DurableCheckpoint {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seq.encode(buf);
        self.digest.encode(buf);
        self.state.encode(buf);
    }
}
impl Decode for DurableCheckpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DurableCheckpoint {
            seq: SeqNum::decode(r)?,
            digest: Digest::decode(r)?,
            state: Bytes::decode(r)?,
        })
    }
}

/// A recovering (or lagging) replica's request for peer state.
///
/// Travels in its own frame kind (`STATE_REQUEST` in `splitbft-net`) so
/// it needs no slot in any protocol's message enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateTransferRequest {
    /// The requesting replica (responses are addressed back to it).
    pub replica: ReplicaId,
    /// The requester's current progress; peers may skip the checkpoint
    /// if it would not advance the requester.
    pub have_seq: SeqNum,
}

impl Encode for StateTransferRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.replica.encode(buf);
        self.have_seq.encode(buf);
    }
}
impl Decode for StateTransferRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StateTransferRequest {
            replica: ReplicaId::decode(r)?,
            have_seq: SeqNum::decode(r)?,
        })
    }
}

/// A peer's answer to a [`StateTransferRequest`]: its latest stable
/// checkpoint plus the log suffix above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTransferResponse {
    /// The responding replica.
    pub replica: ReplicaId,
    /// The responder's stable checkpoint (`None` while still at
    /// genesis).
    pub checkpoint: Option<DurableCheckpoint>,
    /// Encoded `Vec<M>` of protocol messages (`M` = the protocol's wire
    /// vocabulary) that let the requester catch up from the checkpoint
    /// through its normal message handlers — re-verified like any other
    /// network input. Opaque at this layer because each protocol speaks
    /// its own `M`.
    pub suffix: Bytes,
}

impl Encode for StateTransferResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.replica.encode(buf);
        self.checkpoint.encode(buf);
        self.suffix.encode(buf);
    }
}
impl Decode for StateTransferResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StateTransferResponse {
            replica: ReplicaId::decode(r)?,
            checkpoint: Option::decode(r)?,
            suffix: Bytes::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, RequestId, Timestamp};
    use crate::message::Request;
    use crate::wire::{decode, roundtrip};

    fn batch() -> RequestBatch {
        RequestBatch::single(Request {
            id: RequestId { client: ClientId(1), timestamp: Timestamp(7) },
            op: Bytes::from_static(b"inc"),
            encrypted: false,
            auth: [3u8; 32],
        })
    }

    #[test]
    fn durable_events_roundtrip() {
        roundtrip(&DurableEvent::Accepted {
            view: View(2),
            seq: SeqNum(9),
            digest: Digest::from_bytes([5u8; 32]),
        });
        roundtrip(&DurableEvent::Committed { seq: SeqNum(9), batch: batch() });
        roundtrip(&DurableEvent::EnteredView { view: View(3) });
        roundtrip(&DurableEvent::CounterIssued { counter: 42 });
        roundtrip(&DurableEvent::StableCheckpoint { seq: SeqNum(128) });
        roundtrip(&DurableEvent::ShardTag { shard: crate::shard::ShardId(3) });
    }

    #[test]
    fn checkpoint_and_transfer_messages_roundtrip() {
        let cp = DurableCheckpoint {
            seq: SeqNum(128),
            digest: Digest::from_bytes([9u8; 32]),
            state: Bytes::from_static(b"certified state"),
        };
        roundtrip(&cp);
        roundtrip(&StateTransferRequest { replica: ReplicaId(2), have_seq: SeqNum(64) });
        roundtrip(&StateTransferResponse {
            replica: ReplicaId(1),
            checkpoint: Some(cp),
            suffix: Bytes::from_static(b"encoded messages"),
        });
        roundtrip(&StateTransferResponse {
            replica: ReplicaId(0),
            checkpoint: None,
            suffix: Bytes::new(),
        });
    }

    #[test]
    fn garbage_event_tag_rejected() {
        assert!(decode::<DurableEvent>(&[99]).is_err());
        assert!(decode::<DurableEvent>(&[]).is_err());
    }
}
