//! Property tests for the wire codec under hostile input.
//!
//! The decoder's contract is *total*: any byte string either decodes or
//! returns a [`WireError`] — it must never panic, hang, or allocate
//! unboundedly, because every frame arriving over TCP is
//! attacker-controlled. These properties throw random and
//! systematically-corrupted buffers at the frame layer and at the
//! structured decoders.

use proptest::prelude::*;
use splitbft_types::wire::{
    decode, encode, frame, parse_frame, FrameAssembler, FrameHeader, WireError, FRAME_HEADER_LEN,
    FRAME_MAGIC, MAX_FRAME_LEN, WIRE_VERSION,
};
use splitbft_types::ConsensusMessage;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Any (kind, payload) frames and parses back to itself.
    #[test]
    fn random_frames_roundtrip(
        kind in any::<u8>(),
        payload in collection::vec(any::<u8>(), 0..512),
    ) {
        let framed = frame(kind, &payload);
        prop_assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());

        let mut header_bytes = [0u8; FRAME_HEADER_LEN];
        header_bytes.copy_from_slice(&framed[..FRAME_HEADER_LEN]);
        let header = FrameHeader::parse(&header_bytes).expect("own frame must parse");
        prop_assert_eq!(header.kind, kind);
        prop_assert_eq!(header.len as usize, payload.len());
        prop_assert_eq!(&framed[FRAME_HEADER_LEN..], &payload[..]);
    }

    // A header whose magic is corrupted anywhere is rejected.
    #[test]
    fn bad_magic_rejected(
        kind in any::<u8>(),
        len in 0u32..MAX_FRAME_LEN,
        corrupt_at in 0usize..4,
        xor in 1u32..256,
    ) {
        let mut bytes = FrameHeader { kind, len }.encode();
        bytes[corrupt_at] ^= xor as u8;
        prop_assert!(matches!(
            FrameHeader::parse(&bytes),
            Err(WireError::BadMagic(_))
        ));
    }

    // A length prefix above the frame bound is rejected before any
    // allocation can happen.
    #[test]
    fn oversized_length_rejected(
        kind in any::<u8>(),
        excess in 1u32..1025,
    ) {
        let len = MAX_FRAME_LEN + excess;
        let bytes = FrameHeader { kind, len }.encode();
        prop_assert_eq!(
            FrameHeader::parse(&bytes),
            Err(WireError::FrameTooLarge(len))
        );
    }

    // Any wrong version byte is rejected.
    #[test]
    fn wrong_version_rejected(kind in any::<u8>(), version in any::<u8>()) {
        let mut bytes = FrameHeader { kind, len: 16 }.encode();
        bytes[4] = version;
        let result = FrameHeader::parse(&bytes);
        if version == WIRE_VERSION {
            prop_assert!(result.is_ok());
        } else {
            prop_assert_eq!(
                result,
                Err(WireError::VersionMismatch { expected: WIRE_VERSION, got: version })
            );
        }
    }

    // Truncating an encoded value anywhere yields an error, not a
    // panic — and never `Ok` for a strict prefix of a collection
    // encoding (the length prefix promises more bytes).
    #[test]
    fn truncated_values_error_cleanly(
        payload in collection::vec(any::<u64>(), 1..64),
        cut_ratio in 0u32..1000,
    ) {
        let bytes = encode(&payload);
        let cut = (bytes.len() - 1) * cut_ratio as usize / 1000;
        let result = decode::<Vec<u64>>(&bytes[..cut]);
        prop_assert!(result.is_err(), "decoded {cut}/{} truncated bytes", bytes.len());
    }

    // Arbitrary garbage never panics the structured decoders, and a
    // decode success implies a canonical re-encode (decode ∘ encode is
    // the identity on the accepted set).
    #[test]
    fn garbage_never_panics_consensus_decoder(
        garbage in collection::vec(any::<u8>(), 0..2048),
    ) {
        if let Ok(message) = decode::<ConsensusMessage>(&garbage) {
            prop_assert_eq!(encode(&message), garbage, "non-canonical decode accepted");
        }
        // Errors (the overwhelmingly common case) are fine; panics are not.
        let _ = decode::<Vec<bytes::Bytes>>(&garbage);
        let _ = decode::<String>(&garbage);
        let _ = decode::<(u64, bool, u32)>(&garbage);
    }

    // Streams that open with a non-SBFT preamble (e.g. a stray HTTP
    // client) fail on the first header.
    #[test]
    fn foreign_preambles_rejected(preamble in collection::vec(any::<u8>(), FRAME_HEADER_LEN..64)) {
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&preamble[..FRAME_HEADER_LEN]);
        if header[..4] != FRAME_MAGIC {
            prop_assert!(FrameHeader::parse(&header).is_err());
        }
    }

    // --- zero-copy reassembly (the evented read path) -----------------

    // A frame stream chopped at *random* byte boundaries — mid-magic,
    // mid-length, mid-payload — reassembles into exactly the sent
    // (kind, payload) sequence, whatever the chunking. Chunks are fed
    // through `read_space`/`commit`, the same fill style the evented
    // socket loop uses.
    #[test]
    fn split_read_reassembly_is_boundary_invariant(
        frames in collection::vec(
            (any::<u8>(), collection::vec(any::<u8>(), 0..96)),
            1..12,
        ),
        cuts in collection::vec(1usize..32, 1..64),
    ) {
        let stream: Vec<u8> = frames
            .iter()
            .flat_map(|(kind, payload)| frame(*kind, payload))
            .collect();

        let mut asm = FrameAssembler::new();
        let mut got: Vec<(u8, Vec<u8>)> = Vec::new();
        let mut pos = 0usize;
        let mut cut = cuts.iter().cycle();
        while pos < stream.len() {
            let take = (*cut.next().unwrap()).min(stream.len() - pos);
            let space = asm.read_space(take);
            space[..take].copy_from_slice(&stream[pos..pos + take]);
            asm.commit(take);
            pos += take;
            while let Some(view) = asm.next_frame().expect("clean stream") {
                got.push((view.kind, view.payload.to_vec()));
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(asm.pending(), 0, "no stray bytes after the last frame");
    }

    // The borrowed decode paths agree byte-for-byte with the owned one:
    // `parse_frame`'s view, the assembler's view, and the payload
    // region of the encoded frame are all identical, and a structured
    // decode from the borrowed slice equals a decode from an owned copy.
    #[test]
    fn borrowed_decode_agrees_with_owned_decode(
        kind in any::<u8>(),
        value in collection::vec(any::<u64>(), 0..64),
    ) {
        let payload = encode(&value);
        let framed = frame(kind, &payload);

        let (view, consumed) = parse_frame(&framed).expect("own frame").expect("complete");
        prop_assert_eq!(consumed, framed.len());
        prop_assert_eq!(view.kind, kind);
        prop_assert_eq!(view.payload, &payload[..]);
        prop_assert_eq!(view.payload, &framed[FRAME_HEADER_LEN..]);

        let mut asm = FrameAssembler::new();
        asm.extend(&framed);
        let assembled = asm.next_frame().expect("clean").expect("complete");
        prop_assert_eq!(assembled.kind, kind);
        prop_assert_eq!(assembled.payload, &payload[..]);

        let borrowed: Vec<u64> = decode(assembled.payload).expect("borrowed decode");
        let owned: Vec<u64> = decode(&assembled.payload.to_vec()).expect("owned decode");
        prop_assert_eq!(&borrowed, &owned);
        prop_assert_eq!(borrowed, value);
    }

    // Garbage streams fed in random chunks never panic the assembler:
    // every prefix either yields frames, wants more bytes, or errors —
    // and a framing error surfaces no later than the first full header.
    #[test]
    fn garbage_streams_never_panic_the_assembler(
        garbage in collection::vec(any::<u8>(), 0..2048),
        cuts in collection::vec(1usize..64, 1..32),
    ) {
        let mut asm = FrameAssembler::new();
        let mut pos = 0usize;
        let mut cut = cuts.iter().cycle();
        let mut failed = false;
        while pos < garbage.len() && !failed {
            let take = (*cut.next().unwrap()).min(garbage.len() - pos);
            asm.extend(&garbage[pos..pos + take]);
            pos += take;
            loop {
                match asm.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => {
                        // The stream is condemned; a real connection
                        // drops here.
                        failed = true;
                        break;
                    }
                }
            }
        }
        if !failed && garbage.len() >= FRAME_HEADER_LEN && garbage[..4] != FRAME_MAGIC {
            prop_assert!(false, "a non-SBFT preamble must condemn the stream");
        }
    }

    // A length bomb — a valid-looking header promising more than
    // MAX_FRAME_LEN — is rejected as soon as the header is complete,
    // before any payload arrives, and without growing the buffer toward
    // the advertised length.
    #[test]
    fn length_bombs_rejected_at_the_header(excess in 1u32..100_000) {
        let len = MAX_FRAME_LEN + excess;
        let header = FrameHeader { kind: 3, len }.encode();
        let mut asm = FrameAssembler::new();
        asm.extend(&header);
        prop_assert_eq!(asm.next_frame(), Err(WireError::FrameTooLarge(len)));
    }
}
