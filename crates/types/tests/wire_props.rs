//! Property tests for the wire codec under hostile input.
//!
//! The decoder's contract is *total*: any byte string either decodes or
//! returns a [`WireError`] — it must never panic, hang, or allocate
//! unboundedly, because every frame arriving over TCP is
//! attacker-controlled. These properties throw random and
//! systematically-corrupted buffers at the frame layer and at the
//! structured decoders.

use proptest::prelude::*;
use splitbft_types::wire::{
    decode, encode, frame, FrameHeader, WireError, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_LEN,
    WIRE_VERSION,
};
use splitbft_types::ConsensusMessage;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Any (kind, payload) frames and parses back to itself.
    #[test]
    fn random_frames_roundtrip(
        kind in any::<u8>(),
        payload in collection::vec(any::<u8>(), 0..512),
    ) {
        let framed = frame(kind, &payload);
        prop_assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());

        let mut header_bytes = [0u8; FRAME_HEADER_LEN];
        header_bytes.copy_from_slice(&framed[..FRAME_HEADER_LEN]);
        let header = FrameHeader::parse(&header_bytes).expect("own frame must parse");
        prop_assert_eq!(header.kind, kind);
        prop_assert_eq!(header.len as usize, payload.len());
        prop_assert_eq!(&framed[FRAME_HEADER_LEN..], &payload[..]);
    }

    // A header whose magic is corrupted anywhere is rejected.
    #[test]
    fn bad_magic_rejected(
        kind in any::<u8>(),
        len in 0u32..MAX_FRAME_LEN,
        corrupt_at in 0usize..4,
        xor in 1u32..256,
    ) {
        let mut bytes = FrameHeader { kind, len }.encode();
        bytes[corrupt_at] ^= xor as u8;
        prop_assert!(matches!(
            FrameHeader::parse(&bytes),
            Err(WireError::BadMagic(_))
        ));
    }

    // A length prefix above the frame bound is rejected before any
    // allocation can happen.
    #[test]
    fn oversized_length_rejected(
        kind in any::<u8>(),
        excess in 1u32..1025,
    ) {
        let len = MAX_FRAME_LEN + excess;
        let bytes = FrameHeader { kind, len }.encode();
        prop_assert_eq!(
            FrameHeader::parse(&bytes),
            Err(WireError::FrameTooLarge(len))
        );
    }

    // Any wrong version byte is rejected.
    #[test]
    fn wrong_version_rejected(kind in any::<u8>(), version in any::<u8>()) {
        let mut bytes = FrameHeader { kind, len: 16 }.encode();
        bytes[4] = version;
        let result = FrameHeader::parse(&bytes);
        if version == WIRE_VERSION {
            prop_assert!(result.is_ok());
        } else {
            prop_assert_eq!(
                result,
                Err(WireError::VersionMismatch { expected: WIRE_VERSION, got: version })
            );
        }
    }

    // Truncating an encoded value anywhere yields an error, not a
    // panic — and never `Ok` for a strict prefix of a collection
    // encoding (the length prefix promises more bytes).
    #[test]
    fn truncated_values_error_cleanly(
        payload in collection::vec(any::<u64>(), 1..64),
        cut_ratio in 0u32..1000,
    ) {
        let bytes = encode(&payload);
        let cut = (bytes.len() - 1) * cut_ratio as usize / 1000;
        let result = decode::<Vec<u64>>(&bytes[..cut]);
        prop_assert!(result.is_err(), "decoded {cut}/{} truncated bytes", bytes.len());
    }

    // Arbitrary garbage never panics the structured decoders, and a
    // decode success implies a canonical re-encode (decode ∘ encode is
    // the identity on the accepted set).
    #[test]
    fn garbage_never_panics_consensus_decoder(
        garbage in collection::vec(any::<u8>(), 0..2048),
    ) {
        if let Ok(message) = decode::<ConsensusMessage>(&garbage) {
            prop_assert_eq!(encode(&message), garbage, "non-canonical decode accepted");
        }
        // Errors (the overwhelmingly common case) are fine; panics are not.
        let _ = decode::<Vec<bytes::Bytes>>(&garbage);
        let _ = decode::<String>(&garbage);
        let _ = decode::<(u64, bool, u32)>(&garbage);
    }

    // Streams that open with a non-SBFT preamble (e.g. a stray HTTP
    // client) fail on the first header.
    #[test]
    fn foreign_preambles_rejected(preamble in collection::vec(any::<u8>(), FRAME_HEADER_LEN..64)) {
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&preamble[..FRAME_HEADER_LEN]);
        if header[..4] != FRAME_MAGIC {
            prop_assert!(FrameHeader::parse(&header).is_err());
        }
    }
}
