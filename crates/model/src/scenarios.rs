//! Canned fault-model scenarios regenerating the paper's Table 1.
//!
//! Each scenario sets up one system (PBFT / hybrid / SplitBFT) under one
//! attacker configuration and reports whether safety held and whether
//! the correct replicas made progress. The *beyond-model* scenarios
//! double as mutation tests: they prove the checker really detects
//! violations when the fault assumptions are exceeded.

use crate::adversary::Adversary;
use crate::explorer::{ExplorerConfig, ScheduleExplorer};
use crate::invariants::ExecutionLedger;
use bytes::Bytes;
use splitbft_app::CounterApp;
use splitbft_core::{ReplicaEvent, SplitBftReplica};
use splitbft_crypto::digest_of;
use splitbft_hybrid::{FaultyUsig, HybridAction, HybridConfig, HybridMessage, HybridReplica, Usig};
use splitbft_pbft::{Action, Replica as PbftReplica};
use splitbft_tee::{CostModel, ExecMode};
use splitbft_types::{
    ClientId, ClusterConfig, CompartmentKind, ConsensusMessage, EnclaveId, ReplicaId,
    RequestBatch, SeqNum, SignerId, Timestamp, View,
};

const SEED: u64 = 0x7AB1E_1;

/// The fault-model scenarios of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// PBFT with `f` byzantine replicas (its design point).
    PbftFByzantine,
    /// PBFT with `f + 1` compromised replicas — beyond its model.
    PbftBeyondF,
    /// Hybrid protocol, `f` byzantine *hosts*, all trusted counters
    /// correct (its design point).
    HybridFByzantineHosts,
    /// Hybrid protocol with one compromised trusted counter — the TEE
    /// failure hybrid protocols assume away.
    HybridCompromisedTee,
    /// SplitBFT with a hostile environment on *every* replica (drops,
    /// reorders, duplicates) and correct enclaves.
    SplitBftHostileEnvironments,
    /// SplitBFT with `f` compromised enclaves *per compartment type*, on
    /// different replicas, actively forging messages (paper Figure 1).
    SplitBftFEnclavesPerType,
    /// SplitBFT with `2f + 1` compromised Confirmation enclaves — beyond
    /// its model.
    SplitBftBeyondModel,
}

impl Scenario {
    /// All scenarios, in Table 1 presentation order.
    pub const ALL: [Scenario; 7] = [
        Scenario::PbftFByzantine,
        Scenario::PbftBeyondF,
        Scenario::HybridFByzantineHosts,
        Scenario::HybridCompromisedTee,
        Scenario::SplitBftHostileEnvironments,
        Scenario::SplitBftFEnclavesPerType,
        Scenario::SplitBftBeyondModel,
    ];

    /// A short human-readable description.
    pub fn describe(&self) -> &'static str {
        match self {
            Scenario::PbftFByzantine => "PBFT, f byzantine replicas",
            Scenario::PbftBeyondF => "PBFT, f+1 compromised replicas",
            Scenario::HybridFByzantineHosts => "Hybrid (2f+1), f byzantine hosts, TEEs correct",
            Scenario::HybridCompromisedTee => "Hybrid (2f+1), one compromised trusted counter",
            Scenario::SplitBftHostileEnvironments => {
                "SplitBFT, hostile environment on all n replicas"
            }
            Scenario::SplitBftFEnclavesPerType => {
                "SplitBFT, f faulty enclaves per compartment type"
            }
            Scenario::SplitBftBeyondModel => "SplitBFT, 2f+1 compromised Confirmation enclaves",
        }
    }

    /// Whether the protocol's fault model claims to tolerate this
    /// scenario (the paper's Table 1 expectation).
    pub fn expected_safe(&self) -> bool {
        !matches!(
            self,
            Scenario::PbftBeyondF
                | Scenario::HybridCompromisedTee
                | Scenario::SplitBftBeyondModel
        )
    }
}

/// The observed outcome of a scenario run.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// No two correct replicas committed divergent batches.
    pub safety_held: bool,
    /// Correct replicas executed at least one request.
    pub made_progress: bool,
    /// Free-text detail for the report.
    pub detail: String,
}

/// Runs one scenario and reports the verdict.
pub fn run_scenario(scenario: Scenario, seed: u64) -> Verdict {
    match scenario {
        Scenario::PbftFByzantine => pbft_scenario(seed, 1),
        Scenario::PbftBeyondF => pbft_scenario(seed, 2),
        Scenario::HybridFByzantineHosts => hybrid_honest_tee(),
        Scenario::HybridCompromisedTee => hybrid_compromised_tee(),
        Scenario::SplitBftHostileEnvironments => splitbft_hostile_envs(seed),
        Scenario::SplitBftFEnclavesPerType => splitbft_f_per_type(seed),
        Scenario::SplitBftBeyondModel => splitbft_beyond_model(),
    }
}

// ---------------------------------------------------------------------------
// PBFT scenarios
// ---------------------------------------------------------------------------

/// Runs PBFT (n = 4) with the adversary holding `compromised` replica
/// keys, including the primary's.
///
/// With one compromised key (the byzantine primary, `f = 1`) the attacker
/// can equivocate, but quorum intersection keeps the correct replicas
/// consistent: at most one of the conflicting proposals can gather a
/// commit quorum. With two compromised keys (`f + 1`) the attacker forges
/// a full vote set for a *different* batch per victim and the two correct
/// replicas commit divergent state.
fn pbft_scenario(seed: u64, compromised: usize) -> Verdict {
    let cluster = ClusterConfig::new(4).expect("n = 4");
    let signers: Vec<SignerId> =
        (0..compromised as u32).map(|i| SignerId::Replica(ReplicaId(i))).collect();
    let adversary = Adversary::new(seed, signers.clone());
    let mut ledger = ExecutionLedger::new();

    let victims: Vec<u32> = (compromised as u32..4).collect();
    let mut replicas: Vec<PbftReplica<CounterApp>> = victims
        .iter()
        .map(|&i| PbftReplica::new(cluster.clone(), ReplicaId(i), seed, CounterApp::new()))
        .collect();

    let batch_a = adversary.evil_batch(0xA0);
    let batch_b = adversary.evil_batch(0xB0);
    let digest_a = digest_of(&batch_a);
    let digest_b = digest_of(&batch_b);
    let primary_key = SignerId::Replica(ReplicaId(0));

    // The equivocation: proposal A to the first victim, proposal B to the
    // rest, plus forged votes from every *other* compromised key.
    let mut inboxes: Vec<Vec<ConsensusMessage>> = Vec::new();
    for (vi, _) in victims.iter().enumerate() {
        let (batch, digest) =
            if vi == 0 { (batch_a.clone(), digest_a) } else { (batch_b.clone(), digest_b) };
        let mut inbox =
            vec![adversary.forge_pre_prepare(primary_key, View(0), SeqNum(1), batch)];
        for signer in &signers {
            let SignerId::Replica(r) = signer else { unreachable!() };
            if *r != ReplicaId(0) {
                inbox.push(adversary.forge_prepare(*signer, *r, View(0), SeqNum(1), digest));
            }
            inbox.push(adversary.forge_commit(*signer, *r, View(0), SeqNum(1), digest));
        }
        inboxes.push(inbox);
    }

    // Message pump. Victims talk to each other freely except that the
    // hostile network partitions victim 0 from the rest when the attacker
    // holds f + 1 keys (it controls scheduling and wants the divergence
    // to stick).
    let partition_first = compromised >= 2;
    let mut pending: Vec<(usize, ConsensusMessage)> = Vec::new();
    for (vi, inbox) in inboxes.into_iter().enumerate() {
        for msg in inbox {
            pending.push((vi, msg));
        }
    }
    let mut steps = 0;
    while let Some((vi, msg)) = pending.pop() {
        steps += 1;
        if steps > 10_000 {
            break;
        }
        let actions = replicas[vi].on_message(msg).unwrap_or_default();
        for action in actions {
            match action {
                Action::CommittedBatch { seq, digest } => {
                    ledger.record_commit(ReplicaId(victims[vi]), seq, digest);
                }
                Action::Broadcast { msg } => {
                    for peer in 0..victims.len() {
                        if peer == vi {
                            continue;
                        }
                        let severed =
                            partition_first && (peer == 0) != (vi == 0) && peer != vi;
                        if !severed {
                            pending.push((peer, msg.clone()));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    Verdict {
        safety_held: ledger.is_safe(),
        made_progress: ledger.committed_slots() > 0,
        detail: format!(
            "{} compromised key(s); {} slot(s) committed; violations: {}",
            compromised,
            ledger.committed_slots(),
            ledger.violations().len()
        ),
    }
}

// ---------------------------------------------------------------------------
// Hybrid scenarios
// ---------------------------------------------------------------------------

fn hybrid_request(client: u32, ts: u64) -> splitbft_types::Request {
    splitbft_pbft::make_request(SEED, ClientId(client), Timestamp(ts), Bytes::from_static(b"inc"))
}

fn hybrid_honest_tee() -> Verdict {
    // f = 1 byzantine host: it suppresses and replays messages but the
    // genuine USIG prevents equivocation; the two correct replicas stay
    // consistent.
    let cfg = HybridConfig::new(3).expect("n = 3");
    let mut primary = HybridReplica::new(
        cfg.clone(),
        ReplicaId(0),
        SEED,
        Usig::new(SEED, ReplicaId(0)),
        CounterApp::new(),
    );
    let mut r1 = HybridReplica::new(
        cfg.clone(),
        ReplicaId(1),
        SEED,
        Usig::new(SEED, ReplicaId(1)),
        CounterApp::new(),
    );
    // Replica 2 is the byzantine host: it receives everything but sends
    // nothing useful (and cannot forge UIs).
    for ts in 1..=3u64 {
        let actions = primary.on_client_batch(vec![hybrid_request(0, ts)]);
        let prepare = actions.iter().find_map(|a| match a {
            HybridAction::Broadcast(m) => Some(m.clone()),
            _ => None,
        });
        if let Some(prepare) = prepare {
            // Replay attack by the byzantine host: deliver twice; the
            // USIG counter window rejects the duplicate.
            let replies = r1.on_message(prepare.clone()).expect("first delivery accepted");
            assert!(r1.on_message(prepare).is_err(), "replay must be rejected");
            // Deliver r1's commit back to the primary (that link is
            // honest).
            for a in replies {
                if let HybridAction::Broadcast(commit) = a {
                    let _ = primary.on_message(commit);
                }
            }
        }
    }
    let safety_held = primary.state_digest() == r1.state_digest()
        && primary.last_executed() == r1.last_executed();
    Verdict {
        safety_held,
        made_progress: r1.last_executed() > 0,
        detail: format!("correct replicas executed {} slots in lockstep", r1.last_executed()),
    }
}

fn hybrid_compromised_tee() -> Verdict {
    // The paper's motivating failure: the primary's "trusted" counter is
    // rolled back and signs two conflicting prepares under one counter
    // value. Each correct replica accepts one — divergence.
    let cfg = HybridConfig::new(3).expect("n = 3");
    let mut evil_primary = HybridReplica::new(
        cfg.clone(),
        ReplicaId(0),
        SEED,
        FaultyUsig::new(SEED, ReplicaId(0)),
        CounterApp::new(),
    );
    let mk = |i: u32| {
        HybridReplica::new(
            cfg.clone(),
            ReplicaId(i),
            SEED,
            Usig::new(SEED, ReplicaId(i)),
            CounterApp::new(),
        )
    };
    let (mut r1, mut r2) = (mk(1), mk(2));

    let grab = |actions: &[HybridAction]| {
        actions.iter().find_map(|a| match a {
            HybridAction::Broadcast(HybridMessage::Prepare(p)) => Some(p.clone()),
            _ => None,
        })
    };
    let a1 = evil_primary.on_client_batch(vec![hybrid_request(0, 1)]);
    let p_a = grab(&a1).expect("prepare A");
    evil_primary.usig_mut().rollback(1);
    let a2 = evil_primary.on_client_batch(vec![hybrid_request(1, 1)]);
    let p_b = grab(&a2).expect("prepare B");

    let digest_a = p_a.batch_digest();
    let digest_b = p_b.batch_digest();
    let _ = r1.on_message(HybridMessage::Prepare(p_a));
    let _ = r2.on_message(HybridMessage::Prepare(p_b));

    let mut ledger = ExecutionLedger::new();
    if r1.last_executed() >= 1 {
        ledger.record_commit(ReplicaId(1), SeqNum(1), digest_a);
    }
    if r2.last_executed() >= 1 {
        ledger.record_commit(ReplicaId(2), SeqNum(1), digest_b);
    }
    Verdict {
        safety_held: ledger.is_safe(),
        made_progress: ledger.committed_slots() > 0,
        detail: format!(
            "counter rollback produced {} violation(s) at slot 1",
            ledger.violations().len()
        ),
    }
}

// ---------------------------------------------------------------------------
// SplitBFT scenarios
// ---------------------------------------------------------------------------

fn splitbft_hostile_envs(seed: u64) -> Verdict {
    let report = ScheduleExplorer::new(ExplorerConfig {
        schedules: 10,
        requests: 6,
        drop_probability: 0.25,
        duplicate_probability: 0.15,
        seed,
        ..Default::default()
    })
    .run();
    Verdict {
        safety_held: report.is_safe(),
        made_progress: report.total_commits > 0,
        detail: format!(
            "{} schedules, {} commits, {} violations",
            report.schedules,
            report.total_commits,
            report.violations.len()
        ),
    }
}

fn splitbft_f_per_type(seed: u64) -> Verdict {
    let compromised = vec![
        SignerId::Enclave(EnclaveId::new(ReplicaId(0), CompartmentKind::Preparation)),
        SignerId::Enclave(EnclaveId::new(ReplicaId(1), CompartmentKind::Confirmation)),
        SignerId::Enclave(EnclaveId::new(ReplicaId(2), CompartmentKind::Execution)),
    ];
    let report = ScheduleExplorer::new(ExplorerConfig {
        schedules: 10,
        requests: 5,
        compromised,
        injection_probability: 0.25,
        drop_probability: 0.1,
        duplicate_probability: 0.1,
        seed,
        ..Default::default()
    })
    .run();
    Verdict {
        safety_held: report.is_safe(),
        made_progress: report.total_commits > 0,
        detail: format!(
            "{} schedules with active forgery, {} commits, {} violations",
            report.schedules,
            report.total_commits,
            report.violations.len()
        ),
    }
}

fn splitbft_beyond_model() -> Verdict {
    // 2f + 1 = 3 compromised Confirmation enclaves can fabricate a full
    // commit certificate for a batch that never prepared. The victim's
    // correct Execution enclave executes it while the rest of the
    // cluster executes the legitimate batch: disagreement.
    let cluster = ClusterConfig::new(4).expect("n = 4");
    let conf = |r: u32| {
        SignerId::Enclave(EnclaveId::new(ReplicaId(r), CompartmentKind::Confirmation))
    };
    let adversary = Adversary::new(SEED, [conf(0), conf(1), conf(2)]);
    let mut ledger = ExecutionLedger::new();

    let mut replicas: Vec<SplitBftReplica<CounterApp>> = (0..4u32)
        .map(|i| {
            SplitBftReplica::new(
                cluster.clone(),
                ReplicaId(i),
                SEED,
                CounterApp::new(),
                ExecMode::Simulation,
                CostModel::simulation_mode(),
            )
        })
        .collect();

    // Honest run on replicas 0..3 (victim r3 is partitioned off by the
    // hostile environment).
    let request =
        splitbft_pbft::make_request(SEED, ClientId(0), Timestamp(1), Bytes::from_static(b"inc"));
    let legit_batch = RequestBatch::single(request.clone());
    let legit_digest = digest_of(&legit_batch);
    let mut pending: Vec<(usize, ConsensusMessage)> = Vec::new();
    let events = replicas[0].on_client_batch(vec![request]);
    for e in events {
        if let ReplicaEvent::Broadcast(m) = e {
            for to in 1..3usize {
                pending.push((to, m.clone()));
            }
        }
    }
    while let Some((to, msg)) = pending.pop() {
        for e in replicas[to].on_network_message(msg) {
            match e {
                ReplicaEvent::Broadcast(m) => {
                    for peer in 0..3usize {
                        if peer != to {
                            pending.push((peer, m.clone()));
                        }
                    }
                }
                ReplicaEvent::Committed { kind: CompartmentKind::Execution, seq, digest } => {
                    ledger.record_commit(ReplicaId(to as u32), seq, digest);
                }
                _ => {}
            }
        }
    }
    // (Replica 0's own Execution commit.)
    ledger.record_commit(ReplicaId(0), SeqNum(1), legit_digest);

    // The attack on victim r3: a forged proposal (Execution accepts any
    // digest-consistent proposal — P5 says only commit quorums carry
    // authority) plus a fabricated commit certificate from the three
    // compromised Confirmation enclaves.
    let evil_batch = adversary.evil_batch(0xBA);
    let evil_digest = digest_of(&evil_batch);
    // The pre-prepare needs no valid Preparation signature for the
    // Execution path; craft one with a bogus signer — the broker of the
    // victim is hostile and routes it straight to Execution, which
    // validates only the digest binding.
    let fake_pp = ConsensusMessage::PrePrepare(splitbft_types::Signed::new(
        splitbft_types::PrePrepare {
            view: View(0),
            seq: SeqNum(1),
            digest: evil_digest,
            batch: evil_batch,
        },
        conf(0),
        splitbft_types::Signature::ZERO,
    ));
    let mut attack = vec![fake_pp];
    for r in 0..3u32 {
        attack.push(adversary.forge_commit(conf(r), ReplicaId(r), View(0), SeqNum(1), evil_digest));
    }
    for msg in attack {
        for e in replicas[3].on_network_message(msg) {
            if let ReplicaEvent::Committed { kind: CompartmentKind::Execution, seq, digest } = e {
                ledger.record_commit(ReplicaId(3), seq, digest);
            }
        }
    }

    Verdict {
        safety_held: ledger.is_safe(),
        made_progress: ledger.committed_slots() > 0,
        detail: format!(
            "forged commit certificate accepted: {} violation(s)",
            ledger.violations().len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_match_the_fault_models() {
        for scenario in Scenario::ALL {
            let verdict = run_scenario(scenario, 11);
            assert_eq!(
                verdict.safety_held,
                scenario.expected_safe(),
                "{scenario:?}: {}",
                verdict.detail
            );
        }
    }

    #[test]
    fn in_model_scenarios_make_progress() {
        for scenario in Scenario::ALL {
            if scenario.expected_safe() {
                let verdict = run_scenario(scenario, 13);
                assert!(verdict.made_progress, "{scenario:?} made no progress");
            }
        }
    }
}
