//! The safety invariants and the ledger that checks them.

use splitbft_types::{Digest, ReplicaId, SeqNum};
use std::collections::BTreeMap;

/// A detected safety violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyViolation {
    /// Two correct replicas committed different batches at one slot.
    Disagreement {
        /// The slot.
        seq: SeqNum,
        /// First replica and its digest.
        a: (ReplicaId, Digest),
        /// Second replica and its conflicting digest.
        b: (ReplicaId, Digest),
    },
    /// A replica executed an operation no client submitted.
    ForgedExecution {
        /// The executing replica.
        replica: ReplicaId,
        /// The slot.
        seq: SeqNum,
    },
}

impl std::fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafetyViolation::Disagreement { seq, a, b } => write!(
                f,
                "disagreement at {seq}: {} committed {} but {} committed {}",
                a.0,
                a.1.short(),
                b.0,
                b.1.short()
            ),
            SafetyViolation::ForgedExecution { replica, seq } => {
                write!(f, "{replica} executed a forged operation at {seq}")
            }
        }
    }
}

/// Collects per-replica commit records and checks agreement.
#[derive(Debug, Clone, Default)]
pub struct ExecutionLedger {
    /// `(seq → (replica → digest))` over *correct* replicas only.
    commits: BTreeMap<SeqNum, BTreeMap<ReplicaId, Digest>>,
    /// Digests of batches legitimately submitted by clients.
    legitimate: std::collections::BTreeSet<Digest>,
    violations: Vec<SafetyViolation>,
}

impl ExecutionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a batch digest as legitimately submitted (for the
    /// validity check).
    pub fn register_legitimate(&mut self, digest: Digest) {
        self.legitimate.insert(digest);
    }

    /// Records that correct replica `replica` committed `digest` at
    /// `seq` (as observed at its Execution stage), checking agreement
    /// and validity on the fly.
    pub fn record_commit(&mut self, replica: ReplicaId, seq: SeqNum, digest: Digest) {
        let slot = self.commits.entry(seq).or_default();
        for (&other, &other_digest) in slot.iter() {
            if other_digest != digest {
                self.violations.push(SafetyViolation::Disagreement {
                    seq,
                    a: (other, other_digest),
                    b: (replica, digest),
                });
            }
        }
        slot.insert(replica, digest);
        if !self.legitimate.is_empty() && !self.legitimate.contains(&digest) {
            self.violations.push(SafetyViolation::ForgedExecution { replica, seq });
        }
    }

    /// All violations detected so far.
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }

    /// `true` if the run stayed safe.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of slots with at least one recorded commit.
    pub fn committed_slots(&self) -> usize {
        self.commits.len()
    }

    /// The highest slot every recorded replica agrees on (progress
    /// indicator for liveness checks).
    pub fn agreed_prefix(&self) -> usize {
        self.commits
            .values()
            .filter(|slot| {
                let mut digests = slot.values();
                let first = digests.next();
                digests.all(|d| Some(d) == first)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(x: u8) -> Digest {
        Digest::from_bytes([x; 32])
    }

    #[test]
    fn agreement_holds_on_matching_commits() {
        let mut ledger = ExecutionLedger::new();
        ledger.record_commit(ReplicaId(0), SeqNum(1), digest(1));
        ledger.record_commit(ReplicaId(1), SeqNum(1), digest(1));
        ledger.record_commit(ReplicaId(0), SeqNum(2), digest(2));
        assert!(ledger.is_safe());
        assert_eq!(ledger.committed_slots(), 2);
    }

    #[test]
    fn disagreement_detected() {
        let mut ledger = ExecutionLedger::new();
        ledger.record_commit(ReplicaId(0), SeqNum(1), digest(1));
        ledger.record_commit(ReplicaId(2), SeqNum(1), digest(9));
        assert!(!ledger.is_safe());
        assert!(matches!(
            ledger.violations()[0],
            SafetyViolation::Disagreement { seq: SeqNum(1), .. }
        ));
    }

    #[test]
    fn forged_execution_detected() {
        let mut ledger = ExecutionLedger::new();
        ledger.register_legitimate(digest(1));
        ledger.record_commit(ReplicaId(0), SeqNum(1), digest(1));
        assert!(ledger.is_safe());
        ledger.record_commit(ReplicaId(1), SeqNum(2), digest(66));
        assert!(matches!(
            ledger.violations()[0],
            SafetyViolation::ForgedExecution { .. }
        ));
    }

    #[test]
    fn validity_disabled_without_registrations() {
        let mut ledger = ExecutionLedger::new();
        ledger.record_commit(ReplicaId(0), SeqNum(1), digest(1));
        assert!(ledger.is_safe());
    }

    #[test]
    fn violation_display_is_readable() {
        let v = SafetyViolation::Disagreement {
            seq: SeqNum(3),
            a: (ReplicaId(0), digest(1)),
            b: (ReplicaId(1), digest(2)),
        };
        let s = v.to_string();
        assert!(s.contains("s3"));
        assert!(s.contains("r0"));
    }
}
