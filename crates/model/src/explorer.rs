//! Randomized schedule exploration for SplitBFT clusters.
//!
//! Each schedule builds a fresh 4-replica cluster, submits client
//! requests, and then delivers the resulting messages in a random order —
//! dropping, duplicating, and delaying them, and interleaving forgeries
//! from the [`Adversary`] — while the [`ExecutionLedger`] checks the
//! safety invariants. Many independent seeds approximate the interleaving
//! coverage that the paper's Ivy proof establishes deductively.

use crate::adversary::Adversary;
use crate::invariants::{ExecutionLedger, SafetyViolation};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splitbft_app::CounterApp;
use splitbft_core::{ReplicaEvent, SplitBftReplica};
use splitbft_crypto::digest_of;
use splitbft_tee::{CostModel, ExecMode};
use splitbft_types::{
    ClientId, ClusterConfig, CompartmentKind, ConsensusMessage, Digest, EnclaveId, ReplicaId,
    SeqNum, SignerId, Timestamp, View,
};

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Independent random schedules to run.
    pub schedules: u64,
    /// Delivery steps per schedule.
    pub max_steps: usize,
    /// Client requests submitted per schedule.
    pub requests: usize,
    /// Per-delivery probability the (hostile) environment drops the
    /// message.
    pub drop_probability: f64,
    /// Per-delivery probability the message is duplicated.
    pub duplicate_probability: f64,
    /// Enclave keys the adversary holds.
    pub compromised: Vec<SignerId>,
    /// Per-step probability of injecting an adversarial forgery.
    pub injection_probability: f64,
    /// Base seed; schedule `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            schedules: 20,
            max_steps: 4_000,
            requests: 8,
            drop_probability: 0.05,
            duplicate_probability: 0.05,
            compromised: Vec::new(),
            injection_probability: 0.0,
            seed: 0xE57,
        }
    }
}

/// The outcome of an exploration.
#[derive(Debug)]
pub struct ExplorationReport {
    /// Schedules executed.
    pub schedules: u64,
    /// Violations found, with the schedule seed that produced them.
    pub violations: Vec<(u64, SafetyViolation)>,
    /// Total slots committed by correct replicas across all schedules.
    pub total_commits: usize,
    /// Slots on which all committing correct replicas agreed.
    pub agreed_slots: usize,
}

impl ExplorationReport {
    /// `true` if no schedule violated safety.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The explorer itself.
#[derive(Debug)]
pub struct ScheduleExplorer {
    config: ExplorerConfig,
}

const MASTER_SEED: u64 = 0x5EED_5EED;

impl ScheduleExplorer {
    /// Creates an explorer.
    pub fn new(config: ExplorerConfig) -> Self {
        ScheduleExplorer { config }
    }

    /// Runs all schedules and reports.
    pub fn run(&self) -> ExplorationReport {
        let mut report = ExplorationReport {
            schedules: self.config.schedules,
            violations: Vec::new(),
            total_commits: 0,
            agreed_slots: 0,
        };
        for i in 0..self.config.schedules {
            let seed = self.config.seed.wrapping_add(i);
            let ledger = self.run_schedule(seed);
            report.total_commits += ledger.committed_slots();
            report.agreed_slots += ledger.agreed_prefix();
            for v in ledger.violations() {
                report.violations.push((seed, v.clone()));
            }
        }
        report
    }

    fn exec_compromised(&self, replica: ReplicaId) -> bool {
        self.config
            .compromised
            .contains(&SignerId::Enclave(EnclaveId::new(replica, CompartmentKind::Execution)))
    }

    fn run_schedule(&self, seed: u64) -> ExecutionLedger {
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = ClusterConfig::new(4).expect("n = 4");
        let mut replicas: Vec<SplitBftReplica<CounterApp>> = (0..4u32)
            .map(|i| {
                SplitBftReplica::new(
                    cluster.clone(),
                    ReplicaId(i),
                    MASTER_SEED,
                    CounterApp::new(),
                    ExecMode::Simulation,
                    CostModel::simulation_mode(),
                )
            })
            .collect();
        let adversary = Adversary::new(MASTER_SEED, self.config.compromised.iter().copied());
        let mut ledger = ExecutionLedger::new();
        let mut pending: Vec<(usize, ConsensusMessage)> = Vec::new();

        // Submit client requests through the honest primary and register
        // their batch digests as legitimate. The validity invariant only
        // applies when no Preparation key is compromised: a compromised
        // Preparation enclave legitimately holds client MAC keys and can
        // fabricate authenticated requests — agreement, not validity, is
        // what SplitBFT guarantees then.
        let check_validity = !self.config.compromised.iter().any(|s| {
            matches!(s, SignerId::Enclave(e) if e.kind == CompartmentKind::Preparation)
        });
        for t in 0..self.config.requests {
            let request = splitbft_pbft::make_request(
                MASTER_SEED,
                ClientId(0),
                Timestamp(t as u64 + 1),
                Bytes::from_static(b"inc"),
            );
            if check_validity {
                ledger.register_legitimate(digest_of(&splitbft_types::RequestBatch::single(
                    request.clone(),
                )));
            }
            let events = replicas[0].on_client_batch(vec![request]);
            handle_events(0, events, &mut pending, &mut ledger, |r| {
                !self.exec_compromised(r)
            });
        }
        // Forged batches are *not* legitimate; pre-compute their digests
        // so the adversary can aim its votes at them.
        let evil = adversary.evil_batch(0xE1);
        let evil_digest = digest_of(&evil);

        let mut steps = 0usize;
        while !pending.is_empty() && steps < self.config.max_steps {
            steps += 1;

            // Adversarial injection.
            if !self.config.compromised.is_empty()
                && rng.gen_bool(self.config.injection_probability)
            {
                let signer = self.config.compromised[rng.gen_range(0..self.config.compromised.len())];
                let seq = SeqNum(rng.gen_range(1..=self.config.requests as u64 + 1));
                let target = rng.gen_range(0..4usize);
                let msg = match signer {
                    SignerId::Enclave(e) if e.kind == CompartmentKind::Preparation => {
                        if rng.gen_bool(0.5) {
                            adversary.forge_pre_prepare(signer, View(0), seq, evil.clone())
                        } else {
                            adversary.forge_prepare(signer, e.replica, View(0), seq, evil_digest)
                        }
                    }
                    SignerId::Enclave(e) if e.kind == CompartmentKind::Confirmation => {
                        adversary.forge_commit(signer, e.replica, View(0), seq, evil_digest)
                    }
                    _ => adversary.forge_pre_prepare(signer, View(0), seq, evil.clone()),
                };
                pending.push((target, msg));
            }

            // Random delivery with drops and duplicates (the hostile
            // environment controls the network and the broker).
            let idx = rng.gen_range(0..pending.len());
            let (dest, msg) = pending.swap_remove(idx);
            if rng.gen_bool(self.config.drop_probability) {
                continue;
            }
            if rng.gen_bool(self.config.duplicate_probability) {
                pending.push((dest, msg.clone()));
            }
            let events = replicas[dest].on_network_message(msg);
            handle_events(dest, events, &mut pending, &mut ledger, |r| {
                !self.exec_compromised(r)
            });
        }
        ledger
    }
}

fn handle_events(
    from: usize,
    events: Vec<ReplicaEvent>,
    pending: &mut Vec<(usize, ConsensusMessage)>,
    ledger: &mut ExecutionLedger,
    replica_is_correct: impl Fn(ReplicaId) -> bool,
) {
    for event in events {
        match event {
            ReplicaEvent::Broadcast(msg) => {
                for to in 0..4usize {
                    if to != from {
                        pending.push((to, msg.clone()));
                    }
                }
            }
            // Agreement is judged at the Execution stage of correct
            // replicas: what they commit is what clients observe.
            ReplicaEvent::Committed { kind: CompartmentKind::Execution, seq, digest } => {
                let replica = ReplicaId(from as u32);
                if replica_is_correct(replica) {
                    ledger.record_commit(replica, seq, digest);
                }
            }
            _ => {}
        }
    }
}

/// Records a commit observation helper usable by scenario code.
pub fn observe_commit(
    ledger: &mut ExecutionLedger,
    replica: ReplicaId,
    seq: SeqNum,
    digest: Digest,
) {
    ledger.record_commit(replica, seq, digest);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_runs_are_safe_and_progress() {
        let report = ScheduleExplorer::new(ExplorerConfig {
            schedules: 5,
            requests: 5,
            ..Default::default()
        })
        .run();
        assert!(report.is_safe(), "violations: {:?}", report.violations);
        assert!(report.total_commits > 0, "no progress at all");
    }

    #[test]
    fn f_compromised_enclaves_per_type_stay_safe() {
        // One compromised enclave of each type, each on a different
        // replica (paper Figure 1), with active forgery injection.
        let compromised = vec![
            SignerId::Enclave(EnclaveId::new(ReplicaId(0), CompartmentKind::Preparation)),
            SignerId::Enclave(EnclaveId::new(ReplicaId(1), CompartmentKind::Confirmation)),
            SignerId::Enclave(EnclaveId::new(ReplicaId(2), CompartmentKind::Execution)),
        ];
        let report = ScheduleExplorer::new(ExplorerConfig {
            schedules: 8,
            requests: 4,
            compromised,
            injection_probability: 0.2,
            ..Default::default()
        })
        .run();
        assert!(report.is_safe(), "violations: {:?}", report.violations);
    }
}
