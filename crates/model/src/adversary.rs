//! A key-forging adversary.
//!
//! The threat model gives the attacker the environment of every replica
//! and a bounded set of *compromised enclaves*. A compromised enclave is
//! modeled at full strength: the adversary holds its signing key and can
//! emit arbitrary well-signed protocol messages from it — equivocating
//! proposals, commits for batches that never prepared, conflicting
//! checkpoints. (This strictly subsumes the data-corruption wrappers in
//! `splitbft-tee::fault`.)

use bytes::Bytes;
use splitbft_crypto::{digest_of, KeyPair};
use splitbft_types::{
    ClientId, Commit, ConsensusMessage, Digest, PrePrepare, Prepare, ReplicaId, Reply, Request,
    RequestBatch, RequestId, SeqNum, SignerId, Timestamp, View,
};
use std::collections::BTreeSet;

/// An adversary holding a set of compromised signing keys.
#[derive(Debug)]
pub struct Adversary {
    master_seed: u64,
    compromised: BTreeSet<SignerId>,
}

impl Adversary {
    /// An adversary that has compromised the given signers of a
    /// deployment keyed from `master_seed`.
    pub fn new(master_seed: u64, compromised: impl IntoIterator<Item = SignerId>) -> Self {
        Adversary { master_seed, compromised: compromised.into_iter().collect() }
    }

    /// `true` if the adversary holds this signer's key.
    pub fn holds(&self, signer: SignerId) -> bool {
        self.compromised.contains(&signer)
    }

    fn key(&self, signer: SignerId) -> KeyPair {
        assert!(self.holds(signer), "adversary does not hold {signer}");
        KeyPair::for_signer(self.master_seed, signer)
    }

    /// A well-formed "evil" batch the adversary fabricated. Its requests
    /// carry *valid* client MACs: a compromised replica (or Preparation
    /// enclave) holds the client MAC keys — it needs them to verify
    /// requests — so it can fabricate authenticated operations. What the
    /// protocols must still guarantee is *agreement*: no two correct
    /// replicas may commit different batches at one slot.
    pub fn evil_batch(&self, tag: u8) -> RequestBatch {
        let id = RequestId { client: ClientId(666), timestamp: Timestamp(tag as u64) };
        let op = Bytes::from(vec![tag; 10]);
        let key = splitbft_crypto::client_mac_key(self.master_seed, id.client);
        let auth = key.tag(&Request::auth_bytes(id, &op, false));
        RequestBatch::single(Request { id, op, encrypted: false, auth })
    }

    /// Forges a `PrePrepare` from a compromised proposer key.
    pub fn forge_pre_prepare(
        &self,
        signer: SignerId,
        view: View,
        seq: SeqNum,
        batch: RequestBatch,
    ) -> ConsensusMessage {
        let digest = digest_of(&batch);
        let pp = PrePrepare { view, seq, digest, batch };
        ConsensusMessage::PrePrepare(self.key(signer).sign_payload(pp, signer))
    }

    /// Forges a `Prepare` vote.
    pub fn forge_prepare(
        &self,
        signer: SignerId,
        claimed_replica: splitbft_types::ReplicaId,
        view: View,
        seq: SeqNum,
        digest: Digest,
    ) -> ConsensusMessage {
        let p = Prepare { view, seq, digest, replica: claimed_replica };
        ConsensusMessage::Prepare(self.key(signer).sign_payload(p, signer))
    }

    /// Forges a `Commit` vote.
    pub fn forge_commit(
        &self,
        signer: SignerId,
        claimed_replica: splitbft_types::ReplicaId,
        view: View,
        seq: SeqNum,
        digest: Digest,
    ) -> ConsensusMessage {
        let c = Commit { view, seq, digest, replica: claimed_replica };
        ConsensusMessage::Commit(self.key(signer).sign_payload(c, signer))
    }

    /// Forges an authenticated `Reply` claiming `replica` executed
    /// `request` with `result`. Replica-to-client authentication is a
    /// MAC under the per-client key — held by *every* replica (they
    /// need it to verify requests, same reasoning as
    /// [`Adversary::evil_batch`]) — so a compromised replica can forge
    /// replies that verify at the client. Safety probes feed forged
    /// reply quorums through their cross-checks to prove the checks are
    /// non-vacuous.
    pub fn forge_reply(
        &self,
        request: RequestId,
        replica: ReplicaId,
        view: View,
        result: Bytes,
    ) -> Reply {
        let key = splitbft_crypto::client_mac_key(self.master_seed, request.client);
        let auth = key.tag(&Reply::auth_bytes(view, request, replica, &result, false));
        Reply { view, request, replica, result, encrypted: false, auth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_crypto::KeyRegistry;
    use splitbft_types::ReplicaId;

    #[test]
    fn forged_messages_verify_under_compromised_keys() {
        let signer = SignerId::Replica(ReplicaId(0));
        let adversary = Adversary::new(7, [signer]);
        let registry = KeyRegistry::with_signers(7, [signer]);
        let msg = adversary.forge_pre_prepare(
            signer,
            View(0),
            SeqNum(1),
            adversary.evil_batch(1),
        );
        let ConsensusMessage::PrePrepare(pp) = msg else { panic!() };
        assert!(registry.verify_signed(&pp).is_ok(), "forgery is well-signed");
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn adversary_cannot_sign_without_the_key() {
        let adversary = Adversary::new(7, [SignerId::Replica(ReplicaId(0))]);
        let _ = adversary.forge_prepare(
            SignerId::Replica(ReplicaId(1)),
            ReplicaId(1),
            View(0),
            SeqNum(1),
            Digest::ZERO,
        );
    }
}
