//! Safety exploration for SplitBFT and its baselines.
//!
//! The paper verifies SplitBFT's safety with an Ivy proof (adapted from
//! Taube et al.'s PBFT proof). This crate is the executable counterpart:
//! a randomized schedule explorer that drives the *real* implementations
//! through adversarial deliveries — reordering, duplication, selective
//! delivery, byzantine enclaves, and a key-forging adversary that has
//! compromised a chosen set of signing keys — while checking the safety
//! invariants after every schedule:
//!
//! - **Agreement**: no two correct replicas commit different batches at
//!   the same sequence number.
//! - **Validity**: every executed batch was submitted by a client (no
//!   forged operations laundered through agreement).
//!
//! It deliberately includes *beyond-fault-model* scenarios that do break
//! safety (PBFT with `f + 1` compromised replicas; a hybrid protocol with
//! a compromised trusted counter; SplitBFT with `2f + 1` compromised
//! Confirmation enclaves) — both to demonstrate the checker actually
//! detects violations, and to regenerate the paper's Table 1 comparison
//! (`splitbft-bench --bin table1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod explorer;
pub mod invariants;
pub mod scenarios;

pub use adversary::Adversary;
pub use explorer::{ExplorerConfig, ScheduleExplorer};
pub use invariants::{ExecutionLedger, SafetyViolation};
pub use scenarios::{run_scenario, Scenario, Verdict};
