//! Property tests for the shard router.
//!
//! Three invariants keep a sharded keyspace coherent forever:
//!
//! 1. **Stability** — the same key maps to the same shard on every
//!    call, in every process, under any interleaving. Routing is a pure
//!    function; there is nothing to warm up and nothing to drift.
//! 2. **Balance** — random keys spread across the shards roughly
//!    uniformly, because the scaling claim depends on every group
//!    carrying a fair slice of the load.
//! 3. **Pinning** — non-keyed applications (counter, blockchain) and
//!    undecodable operations land on shard 0, always, so a sharded
//!    counter deployment behaves exactly like an unsharded one.

use proptest::prelude::*;
use splitbft_app::kvs::KvOp;
use splitbft_shard::ShardRouter;
use splitbft_types::{shard_for_key, ShardId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Stability: routing is a pure function of (key, shard count), and
    // every op kind touching a key agrees with the shared hash.
    #[test]
    fn key_to_shard_is_stable_across_runs_and_op_kinds(
        key in collection::vec(any::<u8>(), 0..64),
        value in collection::vec(any::<u8>(), 0..32),
        shards in 1u32..16,
    ) {
        let router = ShardRouter::new(shards, true);
        let expected = shard_for_key(&key, shards);
        prop_assert_eq!(router.route_op(&KvOp::put(&key, &value).encode_op()), expected);
        prop_assert_eq!(router.route_op(&KvOp::get(&key).encode_op()), expected);
        prop_assert_eq!(router.route_op(&KvOp::delete(&key).encode_op()), expected);
        // A second, independently constructed router agrees.
        let again = ShardRouter::new(shards, true);
        prop_assert_eq!(again.route_op(&KvOp::get(&key).encode_op()), expected);
        // And every shard is in range.
        prop_assert!(expected.0 < shards);
    }

    // Balance: over many random keys no shard starves. The bound is
    // deliberately loose (half the uniform share) — this is a skew
    // alarm, not a chi-squared test.
    #[test]
    fn random_keys_spread_roughly_uniformly(
        seed in any::<u64>(),
        shards in 2u32..9,
    ) {
        let keys = 2048u64;
        let mut counts = vec![0u64; shards as usize];
        for i in 0..keys {
            // Derive distinct keys from the case seed without an RNG.
            let key = format!("key-{seed:016x}-{i:08}");
            counts[shard_for_key(key.as_bytes(), shards).as_usize()] += 1;
        }
        let fair = keys / u64::from(shards);
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                count >= fair / 2,
                "shard {} got {} of {} keys (fair share {})",
                shard, count, keys, fair
            );
        }
    }

    // Pinning: a non-keyed router never leaves shard 0, whatever the
    // operation bytes are — counter `inc`s, blockchain payloads, or
    // bytes that happen to decode as a KvOp.
    #[test]
    fn non_keyed_apps_always_pin_to_shard_zero(
        op in collection::vec(any::<u8>(), 0..128),
        shards in 1u32..16,
    ) {
        let router = ShardRouter::new(shards, false);
        prop_assert_eq!(router.route_op(&op), ShardId(0));
    }

    // Undecodable operations on a keyed router also pin to shard 0 —
    // the router must agree with the KVS, which executes them as
    // deterministic no-ops.
    #[test]
    fn undecodable_keyed_ops_pin_to_shard_zero(
        garbage in collection::vec(any::<u8>(), 0..64),
        shards in 2u32..16,
    ) {
        let router = ShardRouter::new(shards, true);
        if splitbft_types::wire::decode::<KvOp>(&garbage).is_err() {
            prop_assert_eq!(router.route_op(&garbage), ShardId(0));
        }
    }
}
