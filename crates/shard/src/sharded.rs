//! The [`Sharded`] combinator: N independent consensus groups behind
//! one [`Protocol`] facade.
//!
//! Each inner instance is a complete replica of its own group — its own
//! view, primary succession, sequence space, and (when stacked over
//! `splitbft-store`'s `DurableProtocol`) its own WAL and sealed
//! checkpoints. The combinator's only jobs are *routing* (client
//! requests go to the shard that owns their key, peer messages to the
//! shard named in their [`ShardEnvelope`]) and *tagging* (every output
//! a shard produces is wrapped back into an envelope naming it), so the
//! hosting runtime multiplexes all groups over its existing connections
//! without knowing sharding exists.
//!
//! [`ShardMember`] is the stacking shim for durable deployments: it
//! sits *inside* each shard's `DurableProtocol` and writes one
//! [`DurableEvent::ShardTag`] near the head of the shard's WAL, so a
//! recovered `shard-<s>/` directory self-identifies instead of silently
//! replaying into the wrong group.

use crate::router::ShardRouter;
use splitbft_crypto::digest_bytes;
use splitbft_net::transport::{Protocol, ProtocolOutput};
use splitbft_types::wire::{decode, encode};
use splitbft_types::{
    Digest, DurableCheckpoint, DurableEvent, ProtocolError, Request, SeqNum, ShardEnvelope,
    ShardId,
};
use bytes::Bytes;

/// Hosts one protocol instance per shard behind the [`Protocol`] trait.
///
/// The wire vocabulary becomes [`ShardEnvelope`]`<P::Message>`: every
/// peer message names its group, and the combinator demultiplexes
/// before the inner handler runs. A sharded node is therefore *not*
/// wire-compatible with an unsharded one — which is why the node plane
/// only wraps when `shards > 1`, keeping `--shards 1` byte-identical to
/// the pre-sharding deployment.
pub struct Sharded<P: Protocol> {
    router: ShardRouter,
    shards: Vec<P>,
    /// Per-shard progress observed at the previous timeout, so a timer
    /// expiry only fires into the groups that actually stalled — a
    /// healthy shard committing at full rate must not churn views
    /// because its neighbor's primary died.
    progress_at_last_timeout: Vec<u64>,
}

impl<P: Protocol> Sharded<P> {
    /// Builds the combinator from one constructed instance per shard.
    ///
    /// # Panics
    ///
    /// When `instances` is empty or its length disagrees with the
    /// router's shard count — both are construction bugs, not runtime
    /// conditions.
    pub fn new(router: ShardRouter, instances: Vec<P>) -> Self {
        assert!(!instances.is_empty(), "a sharded node needs at least one shard");
        assert_eq!(
            instances.len(),
            router.shards() as usize,
            "router shard count must match the instance count"
        );
        let progress = instances.iter().map(Protocol::progress).collect();
        Sharded { router, shards: instances, progress_at_last_timeout: progress }
    }

    /// The router this node routes with.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Wraps one shard's outputs back into envelopes naming it.
    fn tag(
        shard: ShardId,
        outputs: Vec<ProtocolOutput<P::Message>>,
    ) -> Vec<ProtocolOutput<ShardEnvelope<P::Message>>> {
        outputs
            .into_iter()
            .map(|output| match output {
                ProtocolOutput::Broadcast(msg) => {
                    ProtocolOutput::Broadcast(ShardEnvelope::new(shard, msg))
                }
                ProtocolOutput::Send { to, msg } => {
                    ProtocolOutput::Send { to, msg: ShardEnvelope::new(shard, msg) }
                }
                ProtocolOutput::Reply { to, reply } => ProtocolOutput::Reply { to, reply },
            })
            .collect()
    }
}

impl<P: Protocol> Protocol for Sharded<P> {
    type Message = ShardEnvelope<P::Message>;

    fn on_message(&mut self, msg: Self::Message) -> Vec<ProtocolOutput<Self::Message>> {
        let shard = msg.shard;
        match self.shards.get_mut(shard.as_usize()) {
            Some(instance) => Self::tag(shard, instance.on_message(msg.msg)),
            // A peer claiming a shard this node does not host is either
            // misconfigured or malicious; dropping the message is the
            // same defense every protocol applies to garbage input.
            None => Vec::new(),
        }
    }

    fn on_client_requests(
        &mut self,
        requests: Vec<Request>,
    ) -> Vec<ProtocolOutput<Self::Message>> {
        // Group per shard, preserving arrival order within each group.
        // The router's range equals the instance count (asserted in
        // `new`), so an out-of-range shard here is a routing bug that
        // must panic, not be absorbed by some arbitrary shard.
        let mut grouped: Vec<Vec<Request>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for request in requests {
            let shard = self.router.route_request(&request);
            grouped[shard.as_usize()].push(request);
        }
        let mut outputs = Vec::new();
        for (index, batch) in grouped.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard = ShardId(index as u32);
            outputs.extend(Self::tag(shard, self.shards[index].on_client_requests(batch)));
        }
        outputs
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        let mut outputs = Vec::new();
        for (index, instance) in self.shards.iter_mut().enumerate() {
            let progress = instance.progress();
            let stalled = progress == self.progress_at_last_timeout[index];
            self.progress_at_last_timeout[index] = progress;
            // Only stalled groups with work outstanding fail over;
            // advancing groups keep their primary.
            if stalled && instance.has_pending_requests() {
                outputs.extend(Self::tag(ShardId(index as u32), instance.on_timeout()));
            }
        }
        outputs
    }

    fn progress(&self) -> u64 {
        self.shards.iter().map(Protocol::progress).sum()
    }

    fn has_pending_requests(&self) -> bool {
        self.shards.iter().any(Protocol::has_pending_requests)
    }

    fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        // Durable stacking puts the WAL *inside* each shard
        // (`DurableProtocol<ShardMember<..>>`), which persists its own
        // events; this drain only matters if someone stacks an outer
        // WAL over the combinator, and then it must see everything.
        self.shards.iter_mut().flat_map(Protocol::drain_durable_events).collect()
    }

    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        let inner: Vec<(ShardId, Option<DurableCheckpoint>)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, instance)| (ShardId(index as u32), instance.durable_checkpoint()))
            .collect();
        if inner.iter().all(|(_, cp)| cp.is_none()) {
            return None;
        }
        let seq = composite_seq(&inner);
        let digest = composite_digest(&inner);
        Some(DurableCheckpoint { seq, digest, state: Bytes::from(encode(&inner)) })
    }

    fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        let inner: Vec<(ShardId, Option<DurableCheckpoint>)> = decode(&cp.state)
            .map_err(|e| ProtocolError::Other(format!("bad composite checkpoint: {e}")))?;
        if composite_digest(&inner) != cp.digest || composite_seq(&inner) != cp.seq {
            return Err(ProtocolError::Other(
                "composite checkpoint digest does not cover its parts".into(),
            ));
        }
        for (shard, part) in &inner {
            let Some(part) = part else { continue };
            let instance = self.shards.get_mut(shard.as_usize()).ok_or_else(|| {
                ProtocolError::Other(format!("checkpoint names unknown shard {shard}"))
            })?;
            instance.restore_checkpoint(part)?;
        }
        Ok(())
    }

    fn catch_up_messages(&self, _have_seq: SeqNum) -> Vec<Self::Message> {
        // A single `have_seq` cannot express per-shard progress, so each
        // group serves its full retained suffix (everything above its
        // own stable checkpoint) and the receiver's inner replicas
        // deduplicate — the same re-verified idempotent path any
        // network input takes.
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(index, instance)| {
                let shard = ShardId(index as u32);
                instance
                    .catch_up_messages(SeqNum::zero())
                    .into_iter()
                    .map(move |msg| ShardEnvelope::new(shard, msg))
            })
            .collect()
    }

    fn flush_durable(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        let mut outputs = Vec::new();
        for (index, instance) in self.shards.iter_mut().enumerate() {
            outputs.extend(Self::tag(ShardId(index as u32), instance.flush_durable()));
        }
        outputs
    }

    fn durable_fsyncs(&self) -> u64 {
        self.shards.iter().map(Protocol::durable_fsyncs).sum()
    }

    fn shard_progress(&self) -> Vec<u64> {
        self.shards.iter().map(Protocol::progress).collect()
    }

    fn shard_fsyncs(&self) -> Vec<u64> {
        self.shards.iter().map(Protocol::durable_fsyncs).collect()
    }

    fn current_view(&self) -> u64 {
        // The scalar gauge reports shard 0; the full per-group picture
        // is `shard_views`.
        self.shards.first().map_or(0, |s| s.current_view())
    }

    fn pending_request_count(&self) -> u64 {
        self.shards.iter().map(Protocol::pending_request_count).sum()
    }

    fn wal_bytes(&self) -> u64 {
        self.shards.iter().map(Protocol::wal_bytes).sum()
    }

    fn checkpoint_seal_count(&self) -> u64 {
        self.shards.iter().map(Protocol::checkpoint_seal_count).sum()
    }

    fn shard_views(&self) -> Vec<u64> {
        self.shards.iter().map(Protocol::current_view).collect()
    }

    fn drain_seal(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        let mut outputs = Vec::new();
        for (index, instance) in self.shards.iter_mut().enumerate() {
            outputs.extend(Self::tag(ShardId(index as u32), instance.drain_seal()));
        }
        outputs
    }
}

/// The composite sequence number: the sum of the member checkpoints'
/// sequence numbers. Monotone in every member, so the runtime's "seal
/// when the checkpoint seq advances" trigger still fires whenever any
/// shard seals.
fn composite_seq(parts: &[(ShardId, Option<DurableCheckpoint>)]) -> SeqNum {
    SeqNum(parts.iter().filter_map(|(_, cp)| cp.as_ref().map(|c| c.seq.0)).sum())
}

/// Replica-independent digest over the members' `(shard, seq, digest)`
/// triples. Correct replicas that sealed the same per-shard checkpoints
/// compute the same composite, so the `f + 1` agreement rule of peer
/// state transfer carries over unchanged.
///
/// This must be the workspace's cryptographic hash, not an ad-hoc
/// mixer: `f + 1` peers agreeing on `(seq, digest)` is only worth `f`
/// Byzantine peers if a forged parts vector colliding with the honest
/// composite is as hard as a hash collision. The preimage is a
/// sequence of fixed-width fields, so it is injective in the parts.
fn composite_digest(parts: &[(ShardId, Option<DurableCheckpoint>)]) -> Digest {
    let mut preimage = Vec::with_capacity(parts.len() * 44);
    for (shard, cp) in parts {
        let Some(cp) = cp else { continue };
        preimage.extend_from_slice(&shard.0.to_le_bytes());
        preimage.extend_from_slice(&cp.seq.0.to_le_bytes());
        preimage.extend_from_slice(cp.digest.as_bytes());
    }
    digest_bytes(&preimage)
}

/// The WAL-identity shim for durable sharded stacks: delegates every
/// hook to the inner protocol and injects one
/// [`DurableEvent::ShardTag`] ahead of the first real WAL append, so
/// each `shard-<s>/` log names the group it belongs to. On replay the
/// tag is verified instead of forwarded; a mismatch means an operator
/// pointed a shard at another shard's directory, and the member then
/// **refuses to replay any further event** from the foreign log — a
/// replica must never merge another group's history and silently
/// diverge from its peers. Hosts check
/// [`ShardMember::wal_identity_mismatch`] after recovery and fail
/// startup on `Some`.
pub struct ShardMember<P: Protocol> {
    inner: P,
    shard: ShardId,
    tag_recorded: bool,
    /// The foreign shard a replayed tag named, if any. While set, all
    /// replay is refused.
    mismatched_tag: Option<ShardId>,
}

impl<P: Protocol> ShardMember<P> {
    /// Wraps `inner` as the member for `shard`.
    pub fn new(shard: ShardId, inner: P) -> Self {
        ShardMember { inner, shard, tag_recorded: false, mismatched_tag: None }
    }

    /// The wrapped protocol instance.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The shard this member belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// `Some(foreign)` when WAL replay hit a [`DurableEvent::ShardTag`]
    /// naming another group — the directory this member recovered from
    /// belongs to shard `foreign`, and every event after the tag was
    /// dropped rather than merged. Hosts must treat this as a fatal
    /// miswiring instead of serving the partially-recovered replica.
    pub fn wal_identity_mismatch(&self) -> Option<ShardId> {
        self.mismatched_tag
    }
}

impl<P: Protocol> Protocol for ShardMember<P> {
    type Message = P::Message;

    fn on_message(&mut self, msg: Self::Message) -> Vec<ProtocolOutput<Self::Message>> {
        self.inner.on_message(msg)
    }

    fn on_client_requests(
        &mut self,
        requests: Vec<Request>,
    ) -> Vec<ProtocolOutput<Self::Message>> {
        self.inner.on_client_requests(requests)
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        self.inner.on_timeout()
    }

    fn progress(&self) -> u64 {
        self.inner.progress()
    }

    fn has_pending_requests(&self) -> bool {
        self.inner.has_pending_requests()
    }

    fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        let mut events = self.inner.drain_durable_events();
        if !self.tag_recorded && !events.is_empty() {
            // Lazily, with the first real append: the recovery path
            // discards anything drained before it owns the log, so an
            // eager tag at construction would never reach disk.
            events.insert(0, DurableEvent::ShardTag { shard: self.shard });
            self.tag_recorded = true;
        }
        events
    }

    fn replay_durable_event(&mut self, event: DurableEvent) {
        if self.mismatched_tag.is_some() {
            // A foreign log must not replay into this group: everything
            // after the mismatched tag is dropped, and the host fails
            // recovery via `wal_identity_mismatch`.
            return;
        }
        if let DurableEvent::ShardTag { shard } = event {
            if shard != self.shard {
                self.mismatched_tag = Some(shard);
                eprintln!(
                    "shard {}: WAL identifies itself as {} — this directory is MISWIRED; \
                     refusing to replay another group's log",
                    self.shard, shard
                );
                return;
            }
            self.tag_recorded = true;
            return;
        }
        self.inner.replay_durable_event(event);
    }

    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        self.inner.durable_checkpoint()
    }

    fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        self.inner.restore_checkpoint(cp)
    }

    fn catch_up_messages(&self, have_seq: SeqNum) -> Vec<Self::Message> {
        self.inner.catch_up_messages(have_seq)
    }

    fn flush_durable(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        self.inner.flush_durable()
    }

    fn durable_fsyncs(&self) -> u64 {
        self.inner.durable_fsyncs()
    }

    fn current_view(&self) -> u64 {
        self.inner.current_view()
    }

    fn pending_request_count(&self) -> u64 {
        self.inner.pending_request_count()
    }

    fn wal_bytes(&self) -> u64 {
        self.inner.wal_bytes()
    }

    fn checkpoint_seal_count(&self) -> u64 {
        self.inner.checkpoint_seal_count()
    }

    fn drain_seal(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        self.inner.drain_seal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_app::kvs::{KeyValueStore, KvOp};
    use splitbft_pbft::{make_request, Replica as PbftReplica};
    use splitbft_types::{shard_for_key, ClientId, ClusterConfig, ReplicaId, Timestamp};

    const SEED: u64 = 42;
    const N: usize = 4;
    const SHARDS: u32 = 2;

    type Node = Sharded<PbftReplica<KeyValueStore>>;

    fn cluster() -> Vec<Node> {
        (0..N as u32)
            .map(|id| {
                let instances = (0..SHARDS)
                    .map(|_| {
                        PbftReplica::new(
                            ClusterConfig::new(N).unwrap(),
                            ReplicaId(id),
                            SEED,
                            KeyValueStore::new(),
                        )
                    })
                    .collect();
                Sharded::new(ShardRouter::new(SHARDS, true), instances)
            })
            .collect()
    }

    /// Routes outputs among the nodes until quiescent, returning every
    /// reply produced.
    fn settle(
        nodes: &mut [Node],
        mut pending: Vec<(usize, ProtocolOutput<<Node as Protocol>::Message>)>,
    ) -> Vec<(ClientId, splitbft_types::Reply)> {
        let mut replies = Vec::new();
        let mut budget = 10_000usize;
        while let Some((from, output)) = pending.pop() {
            assert!(budget > 0, "message routing did not quiesce");
            budget -= 1;
            match output {
                ProtocolOutput::Broadcast(msg) => {
                    for (to, node) in nodes.iter_mut().enumerate() {
                        if to != from {
                            for out in node.on_message(msg.clone()) {
                                pending.push((to, out));
                            }
                        }
                    }
                }
                ProtocolOutput::Send { to, msg } => {
                    if to.as_usize() != from {
                        for out in nodes[to.as_usize()].on_message(msg) {
                            pending.push((to.as_usize(), out));
                        }
                    }
                }
                ProtocolOutput::Reply { to, reply } => replies.push((to, reply)),
            }
        }
        replies
    }

    #[test]
    fn two_shards_commit_independently_over_one_message_plane() {
        let mut nodes = cluster();
        // One key per shard (found by the shared hash).
        let mut keys: Vec<String> = Vec::new();
        'outer: for i in 0..64u32 {
            let key = format!("key{i:08}");
            let shard = shard_for_key(key.as_bytes(), SHARDS);
            if keys.iter().all(|k| shard_for_key(k.as_bytes(), SHARDS) != shard) {
                keys.push(key);
                if keys.len() == SHARDS as usize {
                    break 'outer;
                }
            }
        }
        assert_eq!(keys.len(), 2, "need one key on each shard");

        let mut pending = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let request = make_request(
                SEED,
                ClientId(1),
                Timestamp(1 + i as u64),
                KvOp::put(key.as_bytes(), b"value").encode_op(),
            );
            // Clients submit at the primary (replica 0 in view 0).
            for output in nodes[0].on_client_requests(vec![request]) {
                pending.push((0usize, output));
            }
        }
        let replies = settle(&mut nodes, pending);
        assert!(
            replies.len() >= 2 * 2, // f+1 = 2 matching replies per request
            "expected reply quorums for both shards, got {}",
            replies.len()
        );
        // Both shards advanced: per-shard progress is 1 commit each,
        // and the facade sums them.
        for node in &nodes {
            assert_eq!(node.shard_progress(), vec![1, 1]);
            assert_eq!(node.progress(), 2);
        }
    }

    #[test]
    fn messages_for_unknown_shards_are_dropped() {
        let mut nodes = cluster();
        let request = make_request(
            SEED,
            ClientId(1),
            Timestamp(1),
            KvOp::put(b"k", b"v").encode_op(),
        );
        let outputs = nodes[0].on_client_requests(vec![request]);
        let Some(ProtocolOutput::Broadcast(envelope)) = outputs.first() else {
            panic!("primary must broadcast a pre-prepare");
        };
        let forged = ShardEnvelope::new(ShardId(99), envelope.msg.clone());
        assert!(nodes[1].on_message(forged).is_empty());
    }

    #[test]
    fn composite_checkpoint_roundtrips_through_restore() {
        let nodes = cluster();
        // All shards at genesis: no checkpoint at all.
        assert!(nodes[0].durable_checkpoint().is_none());

        // A synthetic composite must be rejected when its digest lies.
        let mut target = cluster().remove(0);
        let parts: Vec<(ShardId, Option<DurableCheckpoint>)> = vec![
            (ShardId(0), None),
            (
                ShardId(1),
                Some(DurableCheckpoint {
                    seq: SeqNum(8),
                    digest: Digest::from_bytes([7u8; 32]),
                    state: Bytes::from_static(b"opaque"),
                }),
            ),
        ];
        let honest = DurableCheckpoint {
            seq: composite_seq(&parts),
            digest: composite_digest(&parts),
            state: Bytes::from(encode(&parts)),
        };
        let forged = DurableCheckpoint { digest: Digest::from_bytes([0xAA; 32]), ..honest.clone() };
        assert!(target.restore_checkpoint(&forged).is_err(), "digest mismatch must fail");
        // The honest composite reaches the inner shard, whose own
        // validation then inspects the opaque bytes (and rejects these
        // synthetic ones — proving dispatch happened).
        assert!(target.restore_checkpoint(&honest).is_err());
    }

    #[test]
    fn composite_digest_is_order_and_content_sensitive() {
        let cp = |seq: u64, fill: u8| DurableCheckpoint {
            seq: SeqNum(seq),
            digest: Digest::from_bytes([fill; 32]),
            state: Bytes::new(),
        };
        let a = vec![(ShardId(0), Some(cp(4, 1))), (ShardId(1), Some(cp(8, 2)))];
        let b = vec![(ShardId(0), Some(cp(8, 2))), (ShardId(1), Some(cp(4, 1)))];
        assert_ne!(composite_digest(&a), composite_digest(&b));
        assert_eq!(composite_digest(&a), composite_digest(&a.clone()));
        assert_eq!(composite_seq(&a), SeqNum(12));
    }

    #[test]
    fn shard_member_tags_its_first_wal_append() {
        let inner = PbftReplica::new(
            ClusterConfig::new(N).unwrap(),
            ReplicaId(0),
            SEED,
            KeyValueStore::new(),
        );
        let mut member = ShardMember::new(ShardId(1), inner);
        // Nothing buffered yet: the discard-drain of recovery sees no
        // events and must not burn the tag.
        assert!(member.drain_durable_events().is_empty());

        let request =
            make_request(SEED, ClientId(1), Timestamp(1), KvOp::put(b"k", b"v").encode_op());
        member.on_client_requests(vec![request]);
        let events = member.drain_durable_events();
        assert_eq!(
            events.first(),
            Some(&DurableEvent::ShardTag { shard: ShardId(1) }),
            "first persisted drain must lead with the shard tag"
        );
        assert!(events.len() > 1, "the real events follow the tag");
        // Once on disk, never again.
        member.on_timeout();
        assert!(!member
            .drain_durable_events()
            .iter()
            .any(|e| matches!(e, DurableEvent::ShardTag { .. })));
    }

    #[test]
    fn shard_member_accepts_its_own_tag_on_replay() {
        let inner = PbftReplica::new(
            ClusterConfig::new(N).unwrap(),
            ReplicaId(0),
            SEED,
            KeyValueStore::new(),
        );
        let mut member = ShardMember::new(ShardId(0), inner);
        member.replay_durable_event(DurableEvent::ShardTag { shard: ShardId(0) });
        let request =
            make_request(SEED, ClientId(1), Timestamp(1), KvOp::put(b"k", b"v").encode_op());
        member.on_client_requests(vec![request]);
        assert!(
            !member
                .drain_durable_events()
                .iter()
                .any(|e| matches!(e, DurableEvent::ShardTag { .. })),
            "a replayed tag must not be re-written"
        );
    }

    #[test]
    fn shard_member_refuses_to_replay_a_foreign_log() {
        use splitbft_types::View;

        let inner = PbftReplica::new(
            ClusterConfig::new(N).unwrap(),
            ReplicaId(0),
            SEED,
            KeyValueStore::new(),
        );
        let mut member = ShardMember::new(ShardId(0), inner);
        assert_eq!(member.wal_identity_mismatch(), None);

        member.replay_durable_event(DurableEvent::ShardTag { shard: ShardId(2) });
        assert_eq!(
            member.wal_identity_mismatch(),
            Some(ShardId(2)),
            "a foreign tag must poison the member"
        );

        // Everything after the foreign tag is another group's history:
        // none of it may reach the inner replica.
        member.replay_durable_event(DurableEvent::EnteredView { view: View(7) });
        assert_eq!(
            member.inner().view(),
            View(0),
            "events replayed after a foreign tag must be dropped"
        );
    }
}
