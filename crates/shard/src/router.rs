//! The deterministic key → shard router.
//!
//! Routing is a pure, static function of the request bytes: KVS
//! operations decode to extract their key, which hashes to a shard via
//! [`splitbft_types::shard_for_key`]; everything else — non-KVS
//! applications, undecodable operations — is pinned to shard 0. There
//! is no routing table to replicate, no rebalancing protocol, and no
//! way for two correct replicas to disagree on where a request belongs.

use splitbft_app::kvs::KvOp;
use splitbft_types::wire::decode;
use splitbft_types::{shard_for_key, Request, ShardId};
use std::fmt;

/// A typed routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A transaction touched keys owned by different shards.
    /// Cross-shard transactions are out of scope for the sharding plane
    /// — the caller must reject the batch rather than split it, because
    /// splitting would break the transaction's atomicity.
    CrossShard {
        /// The distinct shards the transaction touched, in first-seen
        /// order.
        shards: Vec<ShardId>,
    },
    /// An empty transaction has no shard to run on.
    EmptyTransaction,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::CrossShard { shards } => {
                let list: Vec<String> = shards.iter().map(ShardId::to_string).collect();
                write!(
                    f,
                    "cross-shard transaction touches shards {} — \
                     cross-shard transactions are not supported",
                    list.join(", ")
                )
            }
            ShardError::EmptyTransaction => write!(f, "empty transaction has no home shard"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Maps requests to the consensus group that owns them.
///
/// Construction fixes the two routing inputs for the deployment's
/// lifetime: the shard count and whether the application is *keyed*
/// (the KVS — the only app whose operations carry a key). A non-keyed
/// router sends everything to shard 0, which is also what a keyed
/// router with one shard does, so `--shards 1` routes identically to a
/// build with no router at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
    keyed: bool,
}

impl ShardRouter {
    /// A router over `shards` groups; `keyed` says whether operations
    /// carry KVS keys. A shard count of 0 is clamped to 1.
    pub fn new(shards: u32, keyed: bool) -> Self {
        ShardRouter { shards: shards.max(1), keyed }
    }

    /// The shard count this router was built for.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Routes one raw operation. Keyed apps hash the decoded KVS key;
    /// undecodable operations go to shard 0, mirroring the KVS itself,
    /// which executes them as deterministic no-ops — every replica
    /// agrees on both the destination and the outcome.
    pub fn route_op(&self, op: &[u8]) -> ShardId {
        if !self.keyed || self.shards <= 1 {
            return ShardId(0);
        }
        match decode::<KvOp>(op) {
            Ok(KvOp::Put { key, .. } | KvOp::Get { key } | KvOp::Delete { key }) => {
                shard_for_key(&key, self.shards)
            }
            Err(_) => ShardId(0),
        }
    }

    /// Routes one client request (by its operation bytes).
    #[inline]
    pub fn route_request(&self, request: &Request) -> ShardId {
        self.route_op(&request.op)
    }

    /// Routes a multi-request transaction that must execute atomically
    /// on a single shard.
    ///
    /// # Errors
    ///
    /// [`ShardError::CrossShard`] when the requests map to more than
    /// one shard, [`ShardError::EmptyTransaction`] for an empty slice.
    pub fn route_transaction(&self, requests: &[Request]) -> Result<ShardId, ShardError> {
        let mut shards: Vec<ShardId> = Vec::new();
        for request in requests {
            let shard = self.route_request(request);
            if !shards.contains(&shard) {
                shards.push(shard);
            }
        }
        match shards.len() {
            0 => Err(ShardError::EmptyTransaction),
            1 => Ok(shards[0]),
            _ => Err(ShardError::CrossShard { shards }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use splitbft_types::{ClientId, RequestId, Timestamp};

    fn request(op: Bytes) -> Request {
        Request {
            id: RequestId { client: ClientId(1), timestamp: Timestamp(1) },
            op,
            encrypted: false,
            auth: [0u8; 32],
        }
    }

    #[test]
    fn non_keyed_apps_pin_to_shard_zero() {
        let router = ShardRouter::new(4, false);
        for op in [&b"inc"[..], b"read", b"anything"] {
            assert_eq!(router.route_op(op), ShardId(0));
        }
    }

    #[test]
    fn keyed_routing_matches_the_shared_hash() {
        let router = ShardRouter::new(4, true);
        for i in 0..64u32 {
            let key = format!("key{i:08}");
            let op = KvOp::get(key.as_bytes()).encode_op();
            assert_eq!(router.route_op(&op), shard_for_key(key.as_bytes(), 4));
        }
    }

    #[test]
    fn put_get_delete_on_one_key_share_a_shard() {
        let router = ShardRouter::new(8, true);
        let key = b"user:42";
        let put = router.route_op(&KvOp::put(key, b"v").encode_op());
        let get = router.route_op(&KvOp::get(key).encode_op());
        let del = router.route_op(&KvOp::delete(key).encode_op());
        assert_eq!(put, get);
        assert_eq!(get, del);
    }

    #[test]
    fn malformed_ops_route_to_shard_zero() {
        let router = ShardRouter::new(4, true);
        assert_eq!(router.route_op(b"\xff\xff garbage"), ShardId(0));
        assert_eq!(router.route_op(b""), ShardId(0));
    }

    #[test]
    fn cross_shard_transactions_are_rejected_with_the_typed_error() {
        let router = ShardRouter::new(4, true);
        // Find two keys on different shards.
        let mut keys: Vec<String> = Vec::new();
        for i in 0..64u32 {
            let key = format!("key{i:08}");
            if keys.is_empty()
                || shard_for_key(key.as_bytes(), 4)
                    != shard_for_key(keys[0].as_bytes(), 4)
            {
                keys.push(key);
            }
            if keys.len() == 2 {
                break;
            }
        }
        assert_eq!(keys.len(), 2, "64 keys must hit at least two of four shards");
        let txn: Vec<Request> = keys
            .iter()
            .map(|k| request(KvOp::put(k.as_bytes(), b"v").encode_op()))
            .collect();
        match router.route_transaction(&txn) {
            Err(ShardError::CrossShard { shards }) => assert_eq!(shards.len(), 2),
            other => panic!("expected CrossShard, got {other:?}"),
        }
        // Same-shard transactions pass.
        let same: Vec<Request> = (0..3)
            .map(|_| request(KvOp::put(keys[0].as_bytes(), b"v").encode_op()))
            .collect();
        assert_eq!(
            router.route_transaction(&same).unwrap(),
            shard_for_key(keys[0].as_bytes(), 4)
        );
        assert_eq!(router.route_transaction(&[]), Err(ShardError::EmptyTransaction));
    }
}
