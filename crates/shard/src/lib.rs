//! Sharded multi-group consensus plane.
//!
//! A single consensus instance serializes every request through one
//! primary, one WAL, and one suffix ring no matter how fast the
//! transport underneath it gets. This crate lifts the paper's
//! composition discipline one level up: instead of composing protocol
//! *stages* behind narrow interfaces inside a replica, it composes
//! whole protocol *instances* behind the one interface every runtime
//! already hosts — [`splitbft_net::transport::Protocol`].
//!
//! - [`ShardRouter`] — the deterministic static router: KVS keys hash
//!   to their owning group via [`splitbft_types::shard_for_key`],
//!   non-keyed applications pin to shard 0, and multi-shard
//!   transactions are rejected with the typed [`ShardError::CrossShard`]
//!   rather than split.
//! - [`Sharded`] — the combinator: N inner instances, each a complete
//!   replica of its own group, multiplexed over the node's existing
//!   connections by tagging every message with a
//!   [`splitbft_types::ShardEnvelope`]. No new ports, no per-shard
//!   clusters.
//! - [`ShardMember`] — the durable-stacking shim that writes a
//!   [`splitbft_types::DurableEvent::ShardTag`] into each shard's WAL
//!   so recovered directories self-identify.
//!
//! The node plane only wraps when `shards > 1`; a single-shard
//! deployment hosts the protocol unwrapped and stays byte-compatible —
//! on the wire and on disk — with a build that predates this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod router;
pub mod sharded;

pub use router::{ShardError, ShardRouter};
pub use sharded::{ShardMember, Sharded};
