//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `bytes` API it actually uses:
//! [`Bytes`], an immutable byte container that is cheap to clone. Backed
//! by either a `&'static [u8]` or an `Arc<Vec<u8>>`, cloning never copies
//! the payload.
//!
//! Only the constructors and traits exercised by the SplitBFT workspace
//! are provided; this is not a general replacement for the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable sequence of bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]) }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(bytes) }
    }

    /// Copies `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { repr: Repr::Shared(Arc::new(data.to_vec())) }
    }

    /// The contained bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` if the container holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a copy of the sub-range as a new `Bytes`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { repr: Repr::Shared(Arc::new(v)) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn static_and_copied_compare_equal() {
        assert_eq!(Bytes::from_static(b"hi"), Bytes::copy_from_slice(b"hi"));
    }

    #[test]
    fn slice_and_deref() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(&b.slice(1..3)[..], &[1, 2]);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'a', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
