//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny slice of the `rand` 0.8 API that the link model and safety
//! explorer use: [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and
//! [`Rng::gen_range`] over integer ranges, backed by a deterministic
//! xoshiro256** generator seeded through splitmix64.
//!
//! Determinism matters more than statistical quality here: both users are
//! *seeded* simulations whose whole point is reproducible runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of pseudo-random values.
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of mantissa are plenty for the probabilities used here.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform value from `range`. Panics on an empty range, like the
    /// real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges of the integer types the workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u64<R: Rng + ?Sized>(rng: &mut R, lo: u64, span: u64) -> u64 {
    // Debiased multiply-shift (Lemire). `span` is the number of values.
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo_mul) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo_mul <= zone {
            return lo + hi;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_u64(rng, 0, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1; // may wrap to 0 for full u64 range
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + sample_u64(rng, 0, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Pre-built generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
            let x = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
