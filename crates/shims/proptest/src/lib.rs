//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of the proptest API its property tests use: [`Strategy`] with
//! [`Strategy::prop_map`], [`any`] for primitives and byte arrays, integer
//! range strategies, [`collection::vec`], tuple strategies, the
//! [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (deterministic across runs), there is **no shrinking**, and
//! `prop_assert*` panics immediately like `assert*`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Re-exported RNG type used by generated tests.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one named property. Seeds differ per
/// property (FNV-1a of the name) but are stable across runs, like a
/// checked-in proptest seed file.
pub fn rng_for(name: &str) -> TestRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform values of a primitive type (the `any::<T>()` entry point).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the uniform strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Strategy for Any<[u8; N]> {
    type Value = [u8; N];
    fn generate(&self, rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u32, u64, usize);

impl Strategy for Range<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        rng.gen_range(self.start as u32..self.end as u32) as u8
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each function runs its body for every
/// generated set of arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = ($strat).generate(&mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, v in collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..5).contains(&v.len()));
        }

        #[test]
        fn mapping_applies(y in (0u64..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 10);
        }
    }
}
