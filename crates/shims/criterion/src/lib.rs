//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors
//! just enough of the criterion 0.5 API for `crates/bench/benches/*` to
//! compile and produce useful median timings: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. There is no statistical analysis, plotting, or saved baseline —
//! each benchmark runs a fixed number of timed samples and prints the
//! median per-iteration time.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times every routine
/// call individually, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is cheap to set up.
    SmallInput,
    /// Routine input is expensive to set up.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Runs closures and records their timing.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { samples: Vec::with_capacity(sample_size), sample_size }
    }

    /// Times `routine` for a fixed number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2]
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        println!("{}/{id}: median {:?} ({} samples)", self.name, bencher.median(), self.sample_size);
        self
    }

    /// Ends the group. No-op in the shim.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
        let mut b2 = Bencher::new(3);
        b2.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b2.samples.len(), 3);
    }
}
