//! End-to-end socket clusters: four replicas of each protocol — PBFT,
//! SplitBFT, and the MinBFT-style hybrid — running over localhost TCP,
//! committing client requests through the full consensus pipeline, and
//! shutting down cleanly.
//!
//! This is the acceptance test for the deployable runtime: everything
//! travels as length-prefixed frames over real sockets, exactly like the
//! `splitbft-node` binary deploys it, just inside one test process.

use splitbft_app::CounterApp;
use splitbft_core::{SplitBftClient, SplitBftReplica, SplitClientEvent};
use splitbft_hybrid::{HybridClient, HybridClientEvent, HybridConfig, HybridReplica, Usig};
use splitbft_net::tcp::{PeerAddr, TcpClient, TcpNode, TcpNodeConfig};
use splitbft_net::transport::Protocol;
use splitbft_pbft::{ClientEvent, PbftClient, Replica as PbftReplica};
use splitbft_tee::{CostModel, ExecMode};
use splitbft_types::{ClientId, ClusterConfig, ReplicaId, Reply};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const SEED: u64 = 1331;
const N: usize = 4;

/// Binds `N` listeners on ephemeral ports, builds the address book, and
/// starts one node per replica. Returns the nodes and the address book.
fn spawn_cluster<P: Protocol>(
    make: impl Fn(ReplicaId) -> P,
) -> (Vec<TcpNode>, Vec<SocketAddr>) {
    spawn_cluster_with(None, make)
}

/// [`spawn_cluster`] with the view-change timer armed at `timeout`.
fn spawn_cluster_with<P: Protocol>(
    timeout: Option<Duration>,
    make: impl Fn(ReplicaId) -> P,
) -> (Vec<TcpNode>, Vec<SocketAddr>) {
    let bound: Vec<_> = (0..N)
        .map(|i| {
            TcpNode::bind(ReplicaId(i as u32), "127.0.0.1:0".parse().unwrap())
                .expect("bind listener")
        })
        .collect();
    let peers: Vec<PeerAddr> = bound
        .iter()
        .map(|b| PeerAddr { id: b.id(), addr: b.local_addr().expect("bound addr") })
        .collect();
    let addrs: Vec<SocketAddr> = peers.iter().map(|p| p.addr).collect();
    let nodes: Vec<TcpNode> = bound
        .into_iter()
        .map(|b| {
            let id = b.id();
            let mut config =
                TcpNodeConfig::new(id, "127.0.0.1:0".parse().unwrap(), peers.clone());
            config.timeout_every = timeout;
            b.start(config, make(id)).expect("start node")
        })
        .collect();
    (nodes, addrs)
}

/// Pumps replies from the socket into `on_reply` until it reports
/// completion or the deadline passes.
fn await_completion(
    client: &TcpClient,
    mut on_reply: impl FnMut(&Reply) -> bool,
    what: &str,
) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        match client.replies().recv_timeout(Duration::from_millis(500)) {
            Ok(reply) => {
                if on_reply(&reply) {
                    return;
                }
            }
            Err(_) => continue,
        }
    }
    panic!("{what}: no completion before deadline");
}

#[test]
fn pbft_cluster_commits_over_tcp() {
    let (nodes, addrs) = spawn_cluster(|id| {
        PbftReplica::new(ClusterConfig::new(N).unwrap(), id, SEED, CounterApp::new())
    });

    let config = ClusterConfig::new(N).unwrap();
    let mut protocol_client = PbftClient::new(config, ClientId(3), SEED);
    let mut tcp = TcpClient::connect(ClientId(3), &addrs, Duration::from_secs(10)).unwrap();

    for expected in 1..=3u64 {
        let request = protocol_client.issue(bytes::Bytes::from_static(b"inc"));
        tcp.send_to(0, &[request]).unwrap(); // replica 0 is primary in view 0
        let mut result = None;
        await_completion(
            &tcp,
            |reply| match protocol_client.on_reply(reply) {
                ClientEvent::Completed(r) => {
                    result = Some(r);
                    true
                }
                _ => false,
            },
            "pbft request",
        );
        assert_eq!(
            result.unwrap(),
            bytes::Bytes::copy_from_slice(&expected.to_le_bytes()),
            "counter should reach {expected}"
        );
    }

    tcp.close();
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn pbft_cluster_tolerates_f_crashed_backups() {
    let (mut nodes, addrs) = spawn_cluster(|id| {
        PbftReplica::new(ClusterConfig::new(N).unwrap(), id, SEED, CounterApp::new())
    });

    // Crash one backup (f = 1): the cluster must still commit, and the
    // client must still connect and assemble its f + 1 reply quorum.
    nodes.pop().unwrap().shutdown();

    let config = ClusterConfig::new(N).unwrap();
    let mut protocol_client = PbftClient::new(config, ClientId(4), SEED);
    let mut tcp = TcpClient::connect(ClientId(4), &addrs, Duration::from_secs(3)).unwrap();
    assert_eq!(tcp.connected(), N - 1, "client should skip the dead replica");

    let request = protocol_client.issue(bytes::Bytes::from_static(b"inc"));
    tcp.send_to(0, &[request]).unwrap();
    let mut result = None;
    await_completion(
        &tcp,
        |reply| match protocol_client.on_reply(reply) {
            ClientEvent::Completed(r) => {
                result = Some(r);
                true
            }
            _ => false,
        },
        "pbft request with crashed backup",
    );
    assert_eq!(result.unwrap(), bytes::Bytes::copy_from_slice(&1u64.to_le_bytes()));

    tcp.close();
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn pbft_cluster_fails_over_a_crashed_primary() {
    // Arm the request-aware view-change timer: a deployed cluster must
    // depose a crashed primary once clients keep retransmitting.
    let (mut nodes, addrs) = spawn_cluster_with(Some(Duration::from_millis(300)), |id| {
        PbftReplica::new(ClusterConfig::new(N).unwrap(), id, SEED, CounterApp::new())
    });

    // Crash the view-0 primary (replica 0 is first in the vec).
    nodes.remove(0).shutdown();

    let config = ClusterConfig::new(N).unwrap();
    let mut protocol_client = PbftClient::new(config, ClientId(6), SEED);
    let mut tcp = TcpClient::connect(ClientId(6), &addrs, Duration::from_secs(3)).unwrap();
    assert_eq!(tcp.connected(), N - 1);

    let request = protocol_client.issue(bytes::Bytes::from_static(b"inc"));
    // The primary is dead: broadcast, then keep retransmitting while the
    // backups' timers arm, fire, and elect replica 1.
    tcp.send_all(std::slice::from_ref(&request)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut result = None;
    while Instant::now() < deadline && result.is_none() {
        match tcp.replies().recv_timeout(Duration::from_millis(500)) {
            Ok(reply) => {
                if let ClientEvent::Completed(r) = protocol_client.on_reply(&reply) {
                    result = Some(r);
                }
            }
            Err(_) => {
                let _ = tcp.send_all(std::slice::from_ref(&request));
            }
        }
    }
    assert_eq!(
        result.expect("request should commit in the new view"),
        bytes::Bytes::copy_from_slice(&1u64.to_le_bytes())
    );

    tcp.close();
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn pbft_idle_cluster_does_not_churn_views() {
    let (nodes, addrs) = spawn_cluster_with(Some(Duration::from_millis(100)), |id| {
        PbftReplica::new(ClusterConfig::new(N).unwrap(), id, SEED, CounterApp::new())
    });

    // Many timer periods pass with no traffic: the request-aware tick
    // must not start view changes.
    std::thread::sleep(Duration::from_millis(600));

    // Replica 0 must still be primary: a request sent *only* to it (no
    // broadcast fallback, no retransmission) completes only in view 0.
    let config = ClusterConfig::new(N).unwrap();
    let mut protocol_client = PbftClient::new(config, ClientId(7), SEED);
    let mut tcp = TcpClient::connect(ClientId(7), &addrs, Duration::from_secs(3)).unwrap();
    let request = protocol_client.issue(bytes::Bytes::from_static(b"inc"));
    tcp.send_to(0, &[request]).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut completed = false;
    while Instant::now() < deadline && !completed {
        if let Ok(reply) = tcp.replies().recv_timeout(Duration::from_millis(200)) {
            completed =
                matches!(protocol_client.on_reply(&reply), ClientEvent::Completed(_));
        }
    }
    assert!(
        completed,
        "request to replica 0 went unanswered — the idle timers must have churned \
         the view away from it, which the request-aware tick exists to prevent"
    );

    tcp.close();
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn splitbft_cluster_commits_over_tcp() {
    let (nodes, addrs) = spawn_cluster(|id| {
        SplitBftReplica::new(
            ClusterConfig::new(N).unwrap(),
            id,
            SEED,
            CounterApp::new(),
            ExecMode::Hardware,
            CostModel::paper_calibrated(),
        )
    });

    let config = ClusterConfig::new(N).unwrap();
    let mut protocol_client =
        SplitBftClient::new(config, ClientId(8), SEED, 1).with_plaintext();
    let mut tcp = TcpClient::connect(ClientId(8), &addrs, Duration::from_secs(10)).unwrap();

    for _ in 0..3 {
        let request = protocol_client.issue(b"inc");
        tcp.send_to(0, &[request]).unwrap();
        await_completion(
            &tcp,
            |reply| matches!(protocol_client.on_reply(reply), SplitClientEvent::Completed(_)),
            "splitbft request",
        );
    }

    tcp.close();
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn minbft_cluster_commits_over_tcp() {
    let (nodes, addrs) = spawn_cluster(|id| {
        HybridReplica::new(
            HybridConfig::new(N).unwrap(),
            id,
            SEED,
            Usig::new(SEED, id),
            CounterApp::new(),
        )
    });

    let config = HybridConfig::new(N).unwrap();
    let mut protocol_client = HybridClient::new(config, ClientId(5), SEED);
    let mut tcp = TcpClient::connect(ClientId(5), &addrs, Duration::from_secs(10)).unwrap();

    for expected in 1..=3u64 {
        let request = protocol_client.issue(bytes::Bytes::from_static(b"inc"));
        tcp.send_to(0, &[request]).unwrap();
        let mut result = None;
        await_completion(
            &tcp,
            |reply| match protocol_client.on_reply(reply) {
                HybridClientEvent::Completed(r) => {
                    result = Some(r);
                    true
                }
                _ => false,
            },
            "minbft request",
        );
        assert_eq!(result.unwrap(), bytes::Bytes::copy_from_slice(&expected.to_le_bytes()));
    }

    tcp.close();
    for node in nodes {
        node.shutdown();
    }
}
