//! Property tests for [`FaultPlan`] determinism and partition symmetry.
//!
//! The chaos plane's value rests on reproducibility: a schedule that
//! found a bug must find it again. These properties pin the contract —
//! same seed + same offered traffic ⇒ identical decisions, regardless of
//! how other links interleave — and the partition semantics: symmetric
//! cuts block both directions, asymmetric cuts exactly one.

use proptest::prelude::*;
use splitbft_net::fault::{FaultDecision, FaultPlan};
use splitbft_types::fault::{FaultCommand, LinkRule};
use splitbft_types::ReplicaId;

/// Strategy for an arbitrary (possibly saturating) link rule on
/// `from → to`.
fn rule(from: u32, to: u32, params: (u8, u8, u8, u32)) -> LinkRule {
    let (drop_percent, duplicate_percent, reorder_percent, delay_ms) = params;
    LinkRule {
        drop_percent,
        duplicate_percent,
        reorder_percent,
        delay_ms,
        ..LinkRule::clean(ReplicaId(from), ReplicaId(to))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Same seed + same traffic ⇒ the same decision sequence, run after
    // run.
    #[test]
    fn same_seed_same_traffic_same_decisions(
        seed in any::<u64>(),
        params in (0u8..101, 0u8..101, 0u8..101, 0u32..500),
        offers in 1usize..300,
    ) {
        let run = || -> Vec<FaultDecision> {
            let plan = FaultPlan::new(seed);
            plan.apply(FaultCommand::SetRule(rule(0, 1, params)));
            (0..offers).map(|_| plan.decide(ReplicaId(0), ReplicaId(1))).collect()
        };
        prop_assert_eq!(run(), run());
    }

    // A link's decision stream only depends on its own traffic: frames
    // offered on other links never shift its verdicts.
    #[test]
    fn decisions_are_independent_across_links(
        seed in any::<u64>(),
        params in (0u8..101, 0u8..101, 0u8..101, 0u32..500),
        interleave in collection::vec((0u32..4, 0u32..4), 0..200),
    ) {
        let isolated = {
            let plan = FaultPlan::new(seed);
            plan.apply(FaultCommand::SetRule(rule(0, 1, params)));
            (0..50).map(|_| plan.decide(ReplicaId(0), ReplicaId(1))).collect::<Vec<_>>()
        };
        let interleaved = {
            let plan = FaultPlan::new(seed);
            plan.apply(FaultCommand::SetRule(rule(0, 1, params)));
            let mut decisions = Vec::new();
            for (i, &(from, to)) in interleave.iter().enumerate() {
                // Other links carry traffic between our offers.
                if (from, to) != (0, 1) {
                    let _ = plan.decide(ReplicaId(from), ReplicaId(to));
                }
                if i % 4 == 0 && decisions.len() < 50 {
                    decisions.push(plan.decide(ReplicaId(0), ReplicaId(1)));
                }
            }
            while decisions.len() < 50 {
                decisions.push(plan.decide(ReplicaId(0), ReplicaId(1)));
            }
            decisions
        };
        prop_assert_eq!(isolated, interleaved);
    }

    // Decision frequencies track the configured percentages (loose
    // bounds — the point is that the rule ranges are honored, not that
    // splitmix64 is a perfect RNG).
    #[test]
    fn decision_mix_tracks_rule_percentages(
        seed in any::<u64>(),
        drop in 10u8..91,
    ) {
        let plan = FaultPlan::new(seed);
        plan.apply(FaultCommand::SetRule(rule(0, 1, (drop, 0, 0, 0))));
        let offers = 2000usize;
        let dropped = (0..offers)
            .filter(|_| plan.decide(ReplicaId(0), ReplicaId(1)) == FaultDecision::Drop)
            .count();
        let expected = offers * usize::from(drop) / 100;
        let slack = offers / 10; // ±10 percentage points
        prop_assert!(
            dropped + slack >= expected && dropped <= expected + slack,
            "drop_percent {} produced {}/{} drops", drop, dropped, offers
        );
    }

    // A symmetric partition blocks both directions across the cut and
    // nothing within a side; healing restores every link.
    #[test]
    fn symmetric_partitions_block_both_directions(
        seed in any::<u64>(),
        split in 1usize..6,
    ) {
        let n = 7usize;
        let side_a: Vec<ReplicaId> = (0..split).map(|i| ReplicaId(i as u32)).collect();
        let side_b: Vec<ReplicaId> = (split..n).map(|i| ReplicaId(i as u32)).collect();
        let plan = FaultPlan::new(seed);
        plan.apply(FaultCommand::Partition {
            name: "cut".into(),
            side_a: side_a.clone(),
            side_b: side_b.clone(),
            symmetric: true,
        });
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i == j {
                    continue;
                }
                let crosses = (i < split as u32) != (j < split as u32);
                let expected =
                    if crosses { FaultDecision::Drop } else { FaultDecision::Deliver };
                prop_assert_eq!(plan.decide(ReplicaId(i), ReplicaId(j)), expected);
            }
        }
        plan.apply(FaultCommand::Heal { name: "cut".into() });
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j {
                    prop_assert_eq!(
                        plan.decide(ReplicaId(i), ReplicaId(j)),
                        FaultDecision::Deliver
                    );
                }
            }
        }
    }

    // A partition not declared asymmetric must be symmetric; one that is
    // blocks exactly the declared direction.
    #[test]
    fn asymmetry_only_when_declared(
        seed in any::<u64>(),
        symmetric in any::<bool>(),
    ) {
        let plan = FaultPlan::new(seed);
        plan.apply(FaultCommand::Partition {
            name: "link".into(),
            side_a: vec![ReplicaId(2)],
            side_b: vec![ReplicaId(5)],
            symmetric,
        });
        prop_assert_eq!(plan.decide(ReplicaId(2), ReplicaId(5)), FaultDecision::Drop);
        let reverse = plan.decide(ReplicaId(5), ReplicaId(2));
        if symmetric {
            prop_assert_eq!(reverse, FaultDecision::Drop);
        } else {
            prop_assert_eq!(reverse, FaultDecision::Deliver);
        }
    }
}
