//! Transport-backend conformance battery.
//!
//! Every [`TransportBackend`] — the in-process bus, the blocking
//! thread-per-connection runtime, and the evented readiness-loop
//! runtime — must host a protocol identically: same delivery and
//! per-link ordering, same drop-self-send semantics, same client reply
//! routing. The socket backends additionally share wire-level
//! obligations the bus cannot express: frames split at arbitrary read
//! boundaries reassemble, peer outboxes reconnect, one unread client
//! cannot starve the rest, and `FAULT_CONTROL` frames hang up the
//! connection unless fault injection was explicitly enabled.
//!
//! Each battery case is one generic function; the `#[test]`s below
//! instantiate it per backend so a failure names the offender.

use bytes::Bytes;
use splitbft_net::backend::{
    BlockingBackend, EventedBackend, InProcessBackend, RunningNode, TransportBackend,
    TransportClient,
};
use splitbft_net::tcp::{PeerAddr, TcpNodeConfig};
use splitbft_net::transport::{frame_kind, write_value, Protocol, ProtocolOutput};
use splitbft_types::wire::{encode, frame};
use splitbft_types::{
    ClientId, FaultCommand, ReplicaId, Reply, Request, RequestId, Timestamp, View,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(30);

/// Per-replica log of `u64` peer-message payloads, shared with the test.
type SeenLog = Arc<Mutex<Vec<u64>>>;

/// Minimal hosted protocol: a client request's op is an LE `u64`; the
/// replica broadcasts that value to its peers and echoes the op back as
/// the reply. Received peer values are appended to a shared log, so a
/// test can assert exactly what arrived, in what order.
struct Probe {
    id: ReplicaId,
    seen: SeenLog,
}

fn echo_reply(id: ReplicaId, req: &Request) -> ProtocolOutput<u64> {
    ProtocolOutput::Reply {
        to: req.client(),
        reply: Reply {
            view: View(0),
            request: req.id,
            replica: id,
            result: req.op.clone(),
            encrypted: false,
            auth: [0; 32],
        },
    }
}

fn op_value(req: &Request) -> u64 {
    let mut le = [0u8; 8];
    le.copy_from_slice(&req.op[..8]);
    u64::from_le_bytes(le)
}

impl Protocol for Probe {
    type Message = u64;

    fn on_message(&mut self, msg: u64) -> Vec<ProtocolOutput<u64>> {
        self.seen.lock().unwrap().push(msg);
        Vec::new()
    }

    fn on_client_requests(&mut self, requests: Vec<Request>) -> Vec<ProtocolOutput<u64>> {
        let mut out = Vec::new();
        for req in &requests {
            out.push(ProtocolOutput::Broadcast(op_value(req)));
            out.push(echo_reply(self.id, req));
        }
        out
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<u64>> {
        Vec::new()
    }
}

/// Like [`Probe`], but answers each request with two *addressed* sends:
/// the value to itself (which every backend must drop) and `value + 1`
/// to the next replica.
struct SelfSender {
    id: ReplicaId,
    n: u32,
    seen: SeenLog,
}

impl Protocol for SelfSender {
    type Message = u64;

    fn on_message(&mut self, msg: u64) -> Vec<ProtocolOutput<u64>> {
        self.seen.lock().unwrap().push(msg);
        Vec::new()
    }

    fn on_client_requests(&mut self, requests: Vec<Request>) -> Vec<ProtocolOutput<u64>> {
        let mut out = Vec::new();
        for req in &requests {
            let value = op_value(req);
            out.push(ProtocolOutput::Send { to: self.id, msg: value });
            out.push(ProtocolOutput::Send {
                to: ReplicaId((self.id.0 + 1) % self.n),
                msg: value + 1,
            });
            out.push(echo_reply(self.id, req));
        }
        out
    }

    fn on_timeout(&mut self) -> Vec<ProtocolOutput<u64>> {
        Vec::new()
    }
}

fn request(client: u32, ts: u64, value: u64) -> Request {
    Request {
        id: RequestId { client: ClientId(client), timestamp: Timestamp(ts) },
        op: Bytes::copy_from_slice(&value.to_le_bytes()),
        encrypted: false,
        auth: [0; 32],
    }
}

/// Binds `n` listeners, collects the address book, starts one node per
/// replica. Returns the nodes and addresses in replica order.
fn spawn_cluster<B: TransportBackend, P: Protocol>(
    backend: &B,
    n: usize,
    fault_injection: bool,
    make: impl Fn(ReplicaId) -> P,
) -> (Vec<B::Node>, Vec<SocketAddr>) {
    let bound: Vec<B::Bound> = (0..n)
        .map(|i| {
            backend
                .bind(ReplicaId(i as u32), "127.0.0.1:0".parse().unwrap())
                .expect("bind listener")
        })
        .collect();
    let peers: Vec<PeerAddr> = bound
        .iter()
        .enumerate()
        .map(|(i, b)| PeerAddr {
            id: ReplicaId(i as u32),
            addr: backend.local_addr(b).expect("bound addr"),
        })
        .collect();
    let addrs: Vec<SocketAddr> = peers.iter().map(|p| p.addr).collect();
    let nodes: Vec<B::Node> = bound
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            let id = ReplicaId(i as u32);
            let mut config =
                TcpNodeConfig::new(id, "127.0.0.1:0".parse().unwrap(), peers.clone());
            config.fault_injection = fault_injection;
            backend.start(b, config, make(id)).expect("start node")
        })
        .collect();
    (nodes, addrs)
}

/// Polls `check` until it passes or the deadline expires.
fn wait_for(what: &str, check: impl Fn() -> bool) {
    let deadline = Instant::now() + DEADLINE;
    while Instant::now() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("{what}: not observed before deadline");
}

// ------------------------------------------------------------------
// All three backends
// ------------------------------------------------------------------

/// A client's requests reach the addressed replica, its broadcasts reach
/// every *other* replica in issue order (per-link FIFO), and the echoed
/// replies come back to the issuing client.
fn delivery_and_ordering<B: TransportBackend>(backend: &B, label: &str) {
    const N: usize = 4;
    const K: u64 = 60;
    let logs: Vec<SeenLog> = (0..N).map(|_| SeenLog::default()).collect();
    let (nodes, addrs) = spawn_cluster(backend, N, false, |id| Probe {
        id,
        seen: logs[id.0 as usize].clone(),
    });

    let mut client =
        backend.connect_client(ClientId(9), &addrs, Duration::from_secs(10)).expect("connect");
    for value in 1..=K {
        client.send_to(0, &[request(9, value, value)]).expect("send");
    }
    let mut replies = 0u64;
    let reply_deadline = Instant::now() + DEADLINE;
    while replies < K && Instant::now() < reply_deadline {
        if let Ok(reply) = client.replies().recv_timeout(Duration::from_millis(500)) {
            assert_eq!(reply.replica, ReplicaId(0), "{label}: reply from addressed replica");
            assert_eq!(
                reply.result.as_ref(),
                reply.request.timestamp.0.to_le_bytes(),
                "{label}: reply echoes the request op"
            );
            replies += 1;
        }
    }
    assert_eq!(replies, K, "{label}: every request must be answered");

    let expected: Vec<u64> = (1..=K).collect();
    for (i, log) in logs.iter().enumerate().skip(1) {
        wait_for(&format!("{label}: replica {i} receives all broadcasts"), || {
            log.lock().unwrap().len() == K as usize
        });
        assert_eq!(
            *log.lock().unwrap(),
            expected,
            "{label}: replica {i} must see the broadcasts in issue order"
        );
    }
    assert!(
        logs[0].lock().unwrap().is_empty(),
        "{label}: a broadcast must not loop back to its sender"
    );

    client.close();
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn delivery_and_ordering_conform_on_every_backend() {
    delivery_and_ordering(&BlockingBackend, "blocking");
    delivery_and_ordering(&EventedBackend, "evented");
    delivery_and_ordering(&InProcessBackend::new(), "in-process");
}

/// A self-addressed `Send` is silently dropped — never delivered
/// locally, never a crash — while the sibling send still goes out.
fn drop_self_send<B: TransportBackend>(backend: &B, label: &str) {
    const N: usize = 2;
    let logs: Vec<SeenLog> = (0..N).map(|_| SeenLog::default()).collect();
    let (nodes, addrs) = spawn_cluster(backend, N, false, |id| SelfSender {
        id,
        n: N as u32,
        seen: logs[id.0 as usize].clone(),
    });

    let mut client =
        backend.connect_client(ClientId(9), &addrs, Duration::from_secs(10)).expect("connect");
    client.send_to(0, &[request(9, 1, 41)]).expect("send");
    client.replies().recv_timeout(DEADLINE).expect("reply");

    wait_for(&format!("{label}: peer receives the sibling send"), || {
        *logs[1].lock().unwrap() == vec![42]
    });
    // The self-send had strictly less distance to travel than the
    // sibling we just observed; give stragglers a moment, then assert
    // it never surfaced.
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        logs[0].lock().unwrap().is_empty(),
        "{label}: self-addressed send must be dropped, got {:?}",
        logs[0].lock().unwrap()
    );

    client.close();
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn self_addressed_sends_are_dropped_on_every_backend() {
    drop_self_send(&BlockingBackend, "blocking");
    drop_self_send(&EventedBackend, "evented");
    drop_self_send(&InProcessBackend::new(), "in-process");
}

// ------------------------------------------------------------------
// Socket backends only
// ------------------------------------------------------------------

/// A peer that was unreachable when the first send went out is reached
/// once it comes up: the outbox retries the connection instead of
/// poisoning the link forever. (Frames sent while the peer was down may
/// be dropped — delivery is at-most-once — but later frames must flow.)
fn peer_reconnect<B: TransportBackend>(backend: &B, label: &str) {
    // Reserve a port for replica 1, then release it so replica 0's
    // first connection attempt is refused.
    let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
    let late_addr = placeholder.local_addr().unwrap();
    drop(placeholder);

    let bound0 = backend.bind(ReplicaId(0), "127.0.0.1:0".parse().unwrap()).unwrap();
    let addr0 = backend.local_addr(&bound0).unwrap();
    let peers = vec![
        PeerAddr { id: ReplicaId(0), addr: addr0 },
        PeerAddr { id: ReplicaId(1), addr: late_addr },
    ];
    let logs: Vec<SeenLog> = (0..2).map(|_| SeenLog::default()).collect();
    let config0 = TcpNodeConfig::new(ReplicaId(0), addr0, peers.clone());
    let node0 = backend
        .start(bound0, config0, Probe { id: ReplicaId(0), seen: logs[0].clone() })
        .unwrap();

    let mut client =
        backend.connect_client(ClientId(9), &[addr0], Duration::from_secs(10)).expect("connect");
    // Broadcast into the void: replica 1 does not exist yet.
    client.send_to(0, &[request(9, 1, 1)]).expect("send");
    client.replies().recv_timeout(DEADLINE).expect("reply while peer is down");
    std::thread::sleep(Duration::from_millis(100));

    // Now replica 1 appears at its published address…
    let bound1 = backend.bind(ReplicaId(1), late_addr).expect("rebind the reserved port");
    let config1 = TcpNodeConfig::new(ReplicaId(1), late_addr, peers);
    let node1 = backend
        .start(bound1, config1, Probe { id: ReplicaId(1), seen: logs[1].clone() })
        .unwrap();

    // …and a later broadcast must reach it.
    client.send_to(0, &[request(9, 2, 2)]).expect("send");
    wait_for(&format!("{label}: restarted peer receives post-restart broadcast"), || {
        logs[1].lock().unwrap().contains(&2)
    });

    client.close();
    node0.shutdown();
    node1.shutdown();
}

#[test]
fn peer_outbox_reconnects_on_socket_backends() {
    peer_reconnect(&BlockingBackend, "blocking");
    peer_reconnect(&EventedBackend, "evented");
}

/// Raw wire check: frames delivered one to three bytes at a time — the
/// header itself split mid-magic, the payload split mid-integer —
/// reassemble into exactly the sent messages, in order.
fn partial_frame_reads<B: TransportBackend>(backend: &B, label: &str) {
    let logs: Vec<SeenLog> = (0..2).map(|_| SeenLog::default()).collect();
    let (nodes, addrs) = spawn_cluster(backend, 2, false, |id| Probe {
        id,
        seen: logs[id.0 as usize].clone(),
    });

    // Pose as replica 1 and deliver three protocol messages to replica
    // 0 in a single byte stream, written in 1/2/3-byte slivers.
    let mut wire = frame(frame_kind::PEER_HELLO, &encode(&ReplicaId(1)));
    for value in [11u64, 12, 13] {
        wire.extend_from_slice(&frame(frame_kind::PROTOCOL, &encode(&value)));
    }
    let mut stream = TcpStream::connect(addrs[0]).expect("connect raw");
    stream.set_nodelay(true).unwrap();
    let mut pos = 0usize;
    let mut step = 1usize;
    while pos < wire.len() {
        let end = (pos + step).min(wire.len());
        stream.write_all(&wire[pos..end]).expect("sliver write");
        stream.flush().unwrap();
        pos = end;
        step = step % 3 + 1; // 1, 2, 3, 1, 2, …
        std::thread::sleep(Duration::from_millis(1));
    }

    wait_for(&format!("{label}: split frames reassemble"), || {
        *logs[0].lock().unwrap() == vec![11, 12, 13]
    });

    drop(stream);
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn partial_frame_reads_reassemble_on_socket_backends() {
    partial_frame_reads(&BlockingBackend, "blocking");
    partial_frame_reads(&EventedBackend, "evented");
}

/// One client that never reads its replies must not stall the node:
/// replies to it are eventually dropped (bounded queue / ring), while a
/// responsive client keeps completing requests.
fn slow_client_non_starvation<B: TransportBackend>(backend: &B, label: &str) {
    let logs: Vec<SeenLog> = (0..2).map(|_| SeenLog::default()).collect();
    let (nodes, addrs) = spawn_cluster(backend, 2, false, |id| Probe {
        id,
        seen: logs[id.0 as usize].clone(),
    });

    // The slow client: connects raw, pours in requests with 32 KiB ops
    // (each echoed straight back), and never reads a byte.
    let mut slow = TcpStream::connect(addrs[0]).expect("connect slow");
    write_value(&mut slow, frame_kind::CLIENT_HELLO, &ClientId(7)).unwrap();
    let big_op = vec![0xabu8; 32 * 1024];
    for ts in 0..512u64 {
        let req = Request {
            id: RequestId { client: ClientId(7), timestamp: Timestamp(ts) },
            op: Bytes::copy_from_slice(&big_op),
            encrypted: false,
            auth: [0; 32],
        };
        write_value(&mut slow, frame_kind::REQUESTS, &vec![req]).expect("slow write");
    }

    // The responsive client must still complete a full round of
    // requests while the slow one's replies back up.
    let mut client =
        backend.connect_client(ClientId(8), &addrs, Duration::from_secs(10)).expect("connect");
    for ts in 1..=20u64 {
        client.send_to(0, &[request(8, ts, ts)]).expect("send");
        let reply = client.replies().recv_timeout(DEADLINE).expect("responsive reply");
        assert_eq!(reply.request.timestamp, Timestamp(ts), "{label}: in-order completion");
    }

    // Unblock any writer stuck on the slow client before joining the
    // node's threads.
    drop(slow);
    client.close();
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn slow_clients_do_not_starve_responsive_ones_on_socket_backends() {
    slow_client_non_starvation(&BlockingBackend, "blocking");
    slow_client_non_starvation(&EventedBackend, "evented");
}

/// `FAULT_CONTROL` frames are a chaos-harness backdoor: a node serving
/// with fault injection disabled (the default) must hang up on them; a
/// node serving with it enabled consumes them and keeps the connection.
fn fault_control_gating<B: TransportBackend>(backend: &B, label: &str) {
    for enabled in [false, true] {
        let logs: Vec<SeenLog> = (0..2).map(|_| SeenLog::default()).collect();
        let (nodes, addrs) = spawn_cluster(backend, 2, enabled, |id| Probe {
            id,
            seen: logs[id.0 as usize].clone(),
        });

        let mut stream = TcpStream::connect(addrs[0]).expect("connect raw");
        stream.set_nodelay(true).unwrap();
        write_value(&mut stream, frame_kind::CLIENT_HELLO, &ClientId(6)).unwrap();
        write_value(&mut stream, frame_kind::FAULT_CONTROL, &FaultCommand::HealAll).unwrap();
        if enabled {
            // The frame is consumed and the connection lives on: a
            // request on the same stream still gets its echo handled
            // (observed via the broadcast to the peer replica).
            write_value(&mut stream, frame_kind::REQUESTS, &vec![request(6, 1, 99)]).unwrap();
            wait_for(&format!("{label}: connection survives enabled FAULT_CONTROL"), || {
                logs[1].lock().unwrap().contains(&99)
            });
        } else {
            stream.set_read_timeout(Some(DEADLINE)).unwrap();
            let mut buf = [0u8; 1];
            assert_eq!(
                stream.read(&mut buf).unwrap_or(0),
                0,
                "{label}: node must hang up on FAULT_CONTROL when injection is disabled"
            );
        }

        drop(stream);
        for node in nodes {
            node.shutdown();
        }
    }
}

#[test]
fn fault_control_is_gated_on_socket_backends() {
    fault_control_gating(&BlockingBackend, "blocking");
    fault_control_gating(&EventedBackend, "evented");
}
