//! Network substrate for the SplitBFT reproduction.
//!
//! The paper's system model assumes an unreliable network that "may
//! discard, reorder, and delay messages but not indefinitely". This crate
//! provides that substrate three ways, all hosting the same sans-I/O
//! protocol state machines through the [`transport::Protocol`] trait:
//!
//! - [`link`] — a deterministic, seeded *link model* ([`link::LinkModel`])
//!   deciding per-message fate (deliver after latency / drop / reorder),
//!   used by the discrete-event simulator and by adversarial tests;
//! - [`runtime`] — a threaded in-process cluster
//!   ([`runtime::ThreadedCluster`]) where every replica runs on its own
//!   OS thread and messages travel over channels, used by the runnable
//!   examples;
//! - [`tcp`] — a deployable socket runtime ([`tcp::TcpNode`]) where every
//!   replica is its own process listening on a TCP address and messages
//!   travel as length-prefixed frames (see [`splitbft_types::wire`]),
//!   with per-peer reconnecting outboxes and send-path batching
//!   ([`transport::PeerOutbox`]);
//! - [`evented`] — a second deployable socket runtime
//!   ([`evented::EventedNode`]), wire-compatible with [`tcp`], that
//!   serves every connection from one readiness loop per node:
//!   nonblocking sockets, bounded per-peer rings with backpressure
//!   instead of writer threads, and zero-copy frame decoding.
//!
//! The [`backend`] module erases the choice behind the
//! [`backend::TransportBackend`] trait (plus a third, in-process bus
//! backend for tests) and the [`backend::TransportKind`] runtime switch
//! the `splitbft-node` CLI exposes as `--transport`.
//!
//! Both hosting runtimes additionally consult a shared
//! [`fault::FaultPlan`] on their send paths — a seeded, runtime-mutable
//! decision table for chaos testing (drop/delay/duplicate rules and
//! named partitions), inert unless the chaos plane installs faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod evented;
pub mod fault;
mod host;
pub mod link;
mod ring;
pub mod runtime;
pub mod status;
pub mod tcp;
pub mod transport;

pub use backend::{
    AnyBound, AnyNode, BlockingBackend, EventedBackend, InProcessBackend, RunningNode,
    TransportBackend, TransportClient, TransportKind,
};
pub use evented::{BoundEventedNode, EventedNode};
pub use fault::{broadcast_fault_command, send_fault_command, FaultDecision, FaultPlan};
pub use link::{LinkFate, LinkModel, NetConfig};
pub use runtime::{NodeHandle, NodeInput, ThreadedCluster};
pub use status::{
    await_event, fetch_events, fetch_snapshot, request_drain, send_status_request, STATUS_CLIENT,
};
pub use tcp::{BoundTcpNode, PeerAddr, TcpClient, TcpNode, TcpNodeConfig};
pub use transport::{BatchPolicy, PeerOutbox, Protocol, ProtocolOutput, WireMessage};
