//! Network substrate for the SplitBFT reproduction.
//!
//! The paper's system model assumes an unreliable network that "may
//! discard, reorder, and delay messages but not indefinitely". This crate
//! provides that substrate twice:
//!
//! - [`link`] — a deterministic, seeded *link model* ([`link::LinkModel`])
//!   deciding per-message fate (deliver after latency / drop / reorder),
//!   used by the discrete-event simulator and by adversarial tests;
//! - [`runtime`] — a threaded in-process cluster
//!   ([`runtime::ThreadedCluster`]) where every replica runs on its own
//!   OS thread and messages travel over crossbeam channels, used by the
//!   runnable examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod runtime;

pub use link::{LinkFate, LinkModel, NetConfig};
pub use runtime::{NodeHandle, NodeLogic, NodeOutput, ThreadedCluster};
