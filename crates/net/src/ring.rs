//! Bounded outbound frame rings for the evented backend.
//!
//! The blocking backend gives every peer link an unbounded channel plus
//! a writer thread; the evented backend replaces both with one
//! [`FrameRing`] per link, drained by the readiness loop itself. The
//! ring is bounded in frames *and* bytes, and it **refuses new frames
//! instead of evicting queued ones** — the same stance as the
//! suffix-ring in `splitbft-core`: silently dropping something already
//! accepted would reorder/lose traffic the caller believes is in
//! flight, while refusing at the door gives the caller an explicit
//! backpressure signal (and the transport's at-most-once contract
//! already makes a refused frame equivalent to a frame lost on the
//! wire).

use std::collections::VecDeque;
use std::sync::Arc;

/// A bounded FIFO of pre-framed, `Arc`-shared byte buffers.
#[derive(Debug)]
pub(crate) struct FrameRing {
    frames: VecDeque<Arc<Vec<u8>>>,
    max_frames: usize,
    max_bytes: usize,
    bytes: usize,
    refused: u64,
}

impl FrameRing {
    /// An empty ring admitting at most `max_frames` frames or
    /// `max_bytes` queued bytes, whichever bound is hit first.
    pub(crate) fn new(max_frames: usize, max_bytes: usize) -> Self {
        FrameRing {
            frames: VecDeque::new(),
            max_frames,
            max_bytes,
            bytes: 0,
            refused: 0,
        }
    }

    /// Admits `framed` at the tail, or refuses it (returning `false`
    /// and counting the refusal) when either bound is reached. A frame
    /// larger than `max_bytes` on its own is still admitted into an
    /// otherwise empty ring — frames are indivisible, so refusing it
    /// forever would wedge the link.
    pub(crate) fn push(&mut self, framed: Arc<Vec<u8>>) -> bool {
        let over_bytes = self.bytes + framed.len() > self.max_bytes && !self.frames.is_empty();
        if self.frames.len() >= self.max_frames || over_bytes {
            self.refused += 1;
            return false;
        }
        self.bytes += framed.len();
        self.frames.push_back(framed);
        true
    }

    /// Removes and returns the head frame.
    pub(crate) fn pop(&mut self) -> Option<Arc<Vec<u8>>> {
        let frame = self.frames.pop_front()?;
        self.bytes -= frame.len();
        Some(frame)
    }

    /// `true` when nothing is queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames refused (backpressure signals) since creation.
    #[cfg(test)]
    pub(crate) fn refused(&self) -> u64 {
        self.refused
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn f(bytes: &[u8]) -> Arc<Vec<u8>> {
        Arc::new(bytes.to_vec())
    }

    #[test]
    fn refuses_at_the_frame_cap_without_evicting() {
        let mut ring = FrameRing::new(2, 1024);
        assert!(ring.push(f(b"a")));
        assert!(ring.push(f(b"b")));
        assert!(!ring.push(f(b"c")), "the third frame is refused, not admitted");
        assert_eq!(ring.refused(), 1);
        // The queued frames are untouched — refuse, don't evict.
        assert_eq!(&**ring.pop().unwrap(), b"a");
        assert_eq!(&**ring.pop().unwrap(), b"b");
        assert!(ring.pop().is_none());
        // Refusal is transient: space freed readmits.
        assert!(ring.push(f(b"c")));
    }

    #[test]
    fn refuses_at_the_byte_cap_but_admits_an_oversized_frame_alone() {
        let mut ring = FrameRing::new(64, 8);
        assert!(ring.push(f(b"12345")));
        assert!(!ring.push(f(b"6789")), "9 queued bytes would exceed the 8-byte cap");
        assert_eq!(ring.refused(), 1);
        ring.pop();
        // A single frame above the cap still goes into an empty ring:
        // frames are indivisible and must not wedge the link forever.
        assert!(ring.push(f(b"0123456789abcdef")));
        assert!(!ring.push(f(b"x")), "but nothing rides along with it");
    }

    /// Stress: concurrent producers against a draining consumer at
    /// capacity. Every frame the ring *accepted* must come out exactly
    /// once, in per-producer order; everything else must be accounted
    /// for by the refusal counter — no silent loss, no duplication, no
    /// eviction.
    #[test]
    fn contended_ring_neither_loses_nor_duplicates_accepted_frames() {
        use std::sync::atomic::{AtomicBool, Ordering};

        const PRODUCERS: u8 = 4;
        const PER_PRODUCER: u32 = 5000;

        let ring = Arc::new(Mutex::new(FrameRing::new(64, 64 * 1024)));
        let done = AtomicBool::new(false);
        let decode = |frame: &[u8]| -> (u8, u32) {
            (frame[0], u32::from_le_bytes(frame[1..5].try_into().unwrap()))
        };

        let (accepted, mut consumed) = std::thread::scope(|s| {
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|producer| {
                    let ring = Arc::clone(&ring);
                    s.spawn(move || {
                        let mut accepted = Vec::new();
                        for seq in 0..PER_PRODUCER {
                            let mut frame = vec![producer];
                            frame.extend_from_slice(&seq.to_le_bytes());
                            if ring.lock().unwrap().push(Arc::new(frame)) {
                                accepted.push((producer, seq));
                            }
                            if seq % 64 == 0 {
                                std::thread::yield_now();
                            }
                        }
                        accepted
                    })
                })
                .collect();

            // Consumer: drain until the producers are done AND the ring
            // is empty (the flag flips only after they joined, so one
            // last empty-check cannot race a straggling push).
            let consumer = {
                let ring = Arc::clone(&ring);
                let done = &done;
                s.spawn(move || {
                    let mut consumed: Vec<(u8, u32)> = Vec::new();
                    loop {
                        let frame = ring.lock().unwrap().pop();
                        match frame {
                            Some(frame) => consumed.push(decode(&frame)),
                            None => {
                                if done.load(Ordering::SeqCst) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    consumed
                })
            };

            let accepted: Vec<(u8, u32)> =
                producers.into_iter().flat_map(|h| h.join().unwrap()).collect();
            done.store(true, Ordering::SeqCst);
            (accepted, consumer.join().unwrap())
        });
        // Sweep anything the consumer's final empty-check left behind.
        while let Some(frame) = ring.lock().unwrap().pop() {
            consumed.push(decode(&frame));
        }

        let refused = ring.lock().unwrap().refused();
        assert_eq!(
            accepted.len() as u64 + refused,
            u64::from(PRODUCERS) * u64::from(PER_PRODUCER),
            "every push is either accepted or counted as refused"
        );
        assert!(refused > 0, "the bounds must actually bite under this load");

        // Exactly the accepted frames come out — no loss, no dup.
        let mut accepted_sorted = accepted.clone();
        let mut consumed_sorted = consumed.clone();
        accepted_sorted.sort_unstable();
        consumed_sorted.sort_unstable();
        assert_eq!(consumed_sorted, accepted_sorted);

        // FIFO per producer: sequence numbers strictly increase.
        for p in 0..PRODUCERS {
            let seqs: Vec<u32> =
                consumed.iter().filter(|(pr, _)| *pr == p).map(|(_, s)| *s).collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]), "producer {p} order preserved");
        }
    }
}
