//! Client-side STATUS helpers: snapshot and event-journal polling.
//!
//! Every socket replica answers [`frame_kind::STATUS`] requests on its
//! client port. Read-only verbs ([`StatusVerb::Snapshot`],
//! [`StatusVerb::Events`]) are always available — they expose the same
//! telemetry the Prometheus endpoint renders, but as typed values over
//! the existing wire format, so the chaos harness and tests can poll a
//! node without parsing text or grepping stderr. Admin verbs
//! ([`StatusVerb::Drain`]) mutate node lifecycle and are gated behind
//! `TcpNodeConfig::status_admin` (the `--enable-status-admin` serve
//! flag), exactly like the fault-control plane: an ungated node queues
//! a [`StatusResponse::Refused`] and closes the connection.
//!
//! Unlike [`send_fault_command`], STATUS is request/response: each call
//! opens a throwaway connection, writes one request, and blocks for the
//! reply frame.
//!
//! [`send_fault_command`]: crate::fault::send_fault_command

use crate::transport::{frame_kind, read_value, write_value};
use splitbft_types::status::{StatusEvent, StatusRequest, StatusResponse, StatusVerb};
use splitbft_types::ClientId;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client id announced by STATUS connections. Reserved alongside the
/// fault-control lane (`u32::MAX`): real clients use small ids.
pub const STATUS_CLIENT: ClientId = ClientId(u32::MAX - 1);

/// Sends one [`StatusRequest`] to the replica at `addr` and waits for
/// the matching [`StatusResponse`].
///
/// # Errors
///
/// Connection, write, or decode failures — including the replica
/// closing the connection because an admin verb was sent to an ungated
/// node (the queued [`StatusResponse::Refused`] is decoded and returned
/// as `Ok` when it arrives before the close races the read).
pub fn send_status_request(
    addr: SocketAddr,
    request: &StatusRequest,
) -> io::Result<StatusResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_value(&mut stream, frame_kind::CLIENT_HELLO, &STATUS_CLIENT)?;
    write_value(&mut stream, frame_kind::STATUS, request)?;
    stream.flush()?;
    read_value(&mut stream, frame_kind::STATUS)
}

/// Fetches the node's current [`NodeSnapshot`].
///
/// # Errors
///
/// I/O failures, or an unexpected response variant.
///
/// [`NodeSnapshot`]: splitbft_types::status::NodeSnapshot
pub fn fetch_snapshot(
    addr: SocketAddr,
) -> io::Result<splitbft_types::status::NodeSnapshot> {
    match send_status_request(addr, &StatusRequest { verb: StatusVerb::Snapshot })? {
        StatusResponse::Snapshot(snap) => Ok(snap),
        other => Err(unexpected(&other)),
    }
}

/// Fetches journal entries with sequence `>= since`, plus the current
/// journal head (the sequence the *next* event will get).
///
/// # Errors
///
/// I/O failures, or an unexpected response variant.
pub fn fetch_events(
    addr: SocketAddr,
    since: u64,
) -> io::Result<(u64, Vec<(u64, StatusEvent)>)> {
    match send_status_request(addr, &StatusRequest { verb: StatusVerb::Events { since } })? {
        StatusResponse::Events { head, events } => Ok((head, events)),
        other => Err(unexpected(&other)),
    }
}

/// Asks the node to drain: stop admitting client requests, finish
/// in-flight batches, seal a checkpoint, and flush the WAL.
///
/// Requires the node to run with status admin verbs enabled; an
/// ungated node answers [`StatusResponse::Refused`] and closes the
/// connection, which this helper surfaces as `PermissionDenied`.
///
/// # Errors
///
/// I/O failures, `PermissionDenied` when refused, or an unexpected
/// response variant.
pub fn request_drain(addr: SocketAddr) -> io::Result<()> {
    match send_status_request(addr, &StatusRequest { verb: StatusVerb::Drain })? {
        StatusResponse::DrainStarted => Ok(()),
        StatusResponse::Refused => Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "status admin verbs are not enabled on this node",
        )),
        other => Err(unexpected(&other)),
    }
}

/// Polls the journal until `pred` matches an event, or the deadline
/// passes.
///
/// Returns the matching `(seq, event)` pair. Polling starts at journal
/// sequence `since`, so callers can record `head` before an action and
/// only observe evidence produced *after* it — the STATUS replacement
/// for the old stderr-cursor protocol.
///
/// # Errors
///
/// `TimedOut` when the deadline passes without a match. Transient
/// connection errors (node restarting) are swallowed and retried until
/// the deadline.
pub fn await_event(
    addr: SocketAddr,
    since: u64,
    deadline: Duration,
    mut pred: impl FnMut(&StatusEvent) -> bool,
) -> io::Result<(u64, StatusEvent)> {
    let start = Instant::now();
    let mut cursor = since;
    loop {
        if let Ok((_, events)) = fetch_events(addr, cursor) {
            for (seq, event) in events {
                cursor = cursor.max(seq + 1);
                if pred(&event) {
                    return Ok((seq, event));
                }
            }
        }
        if start.elapsed() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no matching status event within {deadline:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn unexpected(response: &StatusResponse) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected STATUS response: {response:?}"),
    )
}
