//! The evented socket backend: one readiness loop per node over
//! nonblocking sockets.
//!
//! The blocking backend ([`crate::tcp`]) spends a thread per inbound
//! connection, a writer thread per peer link, and a writer thread per
//! client — fine at 4 replicas and a handful of clients, but a bench
//! driving dozens of pipelined clients oversubscribes the host with
//! runnable threads and pays a context switch plus a per-frame `Vec`
//! allocation for every message. This backend runs each node as a
//! **single thread** that polls nonblocking sockets in a round-robin
//! readiness loop:
//!
//! ```text
//!        ┌───────────────────────────── node thread ──────────────────────────────┐
//!        │  accept ──► read (64 KiB chunks ──► FrameAssembler ──► borrowed frame  │
//!        │     ▲        views, decoded in place — no per-frame Vec)               │
//!        │     │                          │                                       │
//!        │  listener                      ▼                                       │
//!        │              Host::handle (protocol core, one drain batch)             │
//!        │                                │                                       │
//!        │                                ▼                                       │
//!        │  write ◄── per-peer FrameRing (bounded, refuse-don't-evict)            │
//!        │            per-client FrameRing for replies — no writer threads        │
//!        └────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The build environment has no async reactor and `std` exposes no
//! `epoll`/`poll` wrapper (and this crate forbids `unsafe`), so
//! readiness is discovered by attempting the nonblocking syscall and
//! treating `WouldBlock` as "not ready" — with an adaptive idle backoff
//! (50 µs doubling to 1 ms) so an idle node costs ~zero CPU while a
//! loaded node never sleeps. The throughput win comes from what the
//! loop *amortizes*: one large read feeds many frames, decoded as
//! borrowed slices out of the [`FrameAssembler`]; outputs coalesce into
//! one staged write per link per pass; and the whole pass shares a
//! single `flush_durable` group-commit point. Wire format, handshake,
//! state transfer, and `FAULT_CONTROL` gating are byte-identical to the
//! blocking backend — the two interoperate freely.

use crate::fault::{FaultDecision, FaultPlan};
use crate::host::{ClientSink, Event, Gauges, Host, PeerSink, MAX_DRAIN_BATCH};
use crate::ring::FrameRing;
use crate::tcp::TcpNodeConfig;
use crate::transport::{frame_kind, write_value, BatchPolicy, Protocol};
use splitbft_obs::NodeTelemetry;
use splitbft_types::status::{StatusEvent, StatusRequest, StatusResponse, StatusVerb};
use splitbft_types::wire::{decode, encode, frame, FrameAssembler};
use splitbft_types::{
    ClientId, FaultCommand, ReplicaId, Reply, StateTransferRequest, StateTransferResponse,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bytes pulled from one connection per loop pass: large enough to
/// carry dozens of frames per syscall under load, small enough that one
/// flooding connection cannot starve the others (each gets one bounded
/// read per pass).
const READ_CHUNK: usize = 64 * 1024;

/// Per-peer outbound ring bounds. Generous — the ring replaces an
/// unbounded channel, so the cap only bites when a peer is down or
/// drastically slower than the protocol produces; then frames are
/// refused (counted, never evicted), which the at-most-once transport
/// contract already tolerates.
const PEER_RING_FRAMES: usize = 16 * 1024;
const PEER_RING_BYTES: usize = 16 * 1024 * 1024;

/// Per-client reply ring bounds (mirrors the blocking backend's
/// 1024-reply writer queue): a client that stops draining replies loses
/// the overflow instead of stalling the node.
const CLIENT_RING_FRAMES: usize = 1024;
const CLIENT_RING_BYTES: usize = 4 * 1024 * 1024;

/// Outbound connect attempt budget. Localhost connects resolve
/// immediately (accept or RST); the timeout only caps a SYN into a
/// blackhole so one dead peer cannot stall the loop.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(50);

/// Reconnect backoff for outbound peer links (same window as the
/// blocking backend's outbox workers).
const RECONNECT_MIN: Duration = Duration::from_millis(10);
const RECONNECT_MAX: Duration = Duration::from_millis(500);

/// Adaptive idle backoff: reset to `IDLE_MIN` on any activity, doubled
/// up to `IDLE_MAX` while nothing is readable/writable.
const IDLE_MIN: Duration = Duration::from_micros(50);
const IDLE_MAX: Duration = Duration::from_millis(1);

/// A bound-but-not-yet-started evented node (the counterpart of
/// [`crate::tcp::BoundTcpNode`]): the listener exists so its ephemeral
/// port is known, but the loop thread is not running yet.
#[derive(Debug)]
pub struct BoundEventedNode {
    id: ReplicaId,
    listener: TcpListener,
}

impl BoundEventedNode {
    /// The address the listener actually bound (resolved port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// This node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Starts the node's loop thread around `protocol`. `config.listen`
    /// is ignored (the listener is already bound).
    pub fn start<P: Protocol>(
        self,
        config: TcpNodeConfig,
        protocol: P,
    ) -> io::Result<EventedNode> {
        EventedNode::start_bound(self.listener, config, protocol)
    }
}

/// A running replica served by the evented readiness loop. Same
/// observable surface as [`crate::tcp::TcpNode`]; clients and peers
/// cannot tell the two apart on the wire.
pub struct EventedNode {
    id: ReplicaId,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    progress: Arc<AtomicU64>,
    fsyncs: Arc<AtomicU64>,
    shard_gauges: Arc<Mutex<(Vec<u64>, Vec<u64>)>>,
    telemetry: Arc<NodeTelemetry>,
}

impl std::fmt::Debug for EventedNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventedNode")
            .field("id", &self.id)
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl EventedNode {
    /// Reserves a listener for replica `id` without starting anything.
    pub fn bind(id: ReplicaId, listen: SocketAddr) -> io::Result<BoundEventedNode> {
        Ok(BoundEventedNode { id, listener: TcpListener::bind(listen)? })
    }

    /// Binds the listener and starts the loop thread around `protocol`.
    pub fn spawn<P: Protocol>(config: TcpNodeConfig, protocol: P) -> io::Result<Self> {
        let listener = TcpListener::bind(config.listen)?;
        Self::start_bound(listener, config, protocol)
    }

    fn start_bound<P: Protocol>(
        listener: TcpListener,
        config: TcpNodeConfig,
        protocol: P,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let telemetry = NodeTelemetry::new(config.id.0);
        let gauges = Gauges::new(Arc::clone(&telemetry));
        let progress = Arc::clone(&gauges.progress);
        let fsyncs = Arc::clone(&gauges.fsyncs);
        let shard_gauges = Arc::clone(&gauges.shards);
        let id = config.id;
        let loop_shutdown = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name(format!("node-{}-evented", id.0))
            .spawn(move || event_loop(listener, config, protocol, loop_shutdown, gauges))
            .expect("spawn evented loop");
        Ok(EventedNode {
            id,
            local_addr,
            shutdown,
            thread: Some(thread),
            progress,
            fsyncs,
            shard_gauges,
            telemetry,
        })
    }

    /// This node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The bound listen address (useful with port 0 configs).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The hosted protocol's latest `progress()` value, as observed
    /// after the most recent drain batch. Safe to poll from any thread.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::SeqCst)
    }

    /// The hosted protocol's latest `durable_fsyncs()` value (`0` for
    /// non-durable protocols). Safe to poll from any thread.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::SeqCst)
    }

    /// Per-shard breakdown of [`EventedNode::progress`] (a single entry
    /// for unsharded protocols; empty until the first drain batch).
    pub fn shard_progress(&self) -> Vec<u64> {
        self.shard_gauges.lock().expect("shard gauges").0.clone()
    }

    /// Per-shard breakdown of [`EventedNode::fsyncs`].
    pub fn shard_fsyncs(&self) -> Vec<u64> {
        self.shard_gauges.lock().expect("shard gauges").1.clone()
    }

    /// This node's telemetry hub — counters, gauges, and the event
    /// journal the `STATUS` frame and the metrics endpoint serve.
    pub fn telemetry(&self) -> Arc<NodeTelemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Starts a graceful drain: new client requests are refused, and
    /// once nothing is pending the loop seals a checkpoint and flushes
    /// the WAL. Poll `telemetry().drained()`, then call
    /// [`EventedNode::shutdown`]. Idempotent.
    pub fn request_drain(&self) {
        // The loop polls the draining flag every pass and feeds itself
        // `Event::Drain` batches until the seal lands — no channel
        // needed.
        self.telemetry.request_drain();
    }

    /// Stops the loop thread and joins it; every connection closes with
    /// it. The loop never blocks for more than its idle backoff, so no
    /// wake-up connection is needed.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// A connection's authenticated-by-hello identity (the same
/// unauthenticated trust boundary as the blocking backend: protocol
/// payloads carry their own signatures/MACs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Identity {
    /// No hello seen yet; only hello frames are legal.
    Unknown,
    /// A replica connection, pinned to the hello-claimed id.
    Peer(ReplicaId),
    /// A client connection; replies route back here.
    Client(ClientId),
}

/// One inbound connection: its nonblocking socket, reassembly buffer,
/// identity, and (for clients) the bounded reply ring the loop drains.
struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    identity: Identity,
    out: FrameRing,
    staged: Vec<u8>,
    staged_pos: usize,
    dead: bool,
    /// Close once the out ring and staged batch drain — used to deliver
    /// a final frame (e.g. [`StatusResponse::Refused`]) before the
    /// connection dies, mirroring the blocking backend's writer thread
    /// draining its queue on exit.
    close_when_drained: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            assembler: FrameAssembler::new(),
            identity: Identity::Unknown,
            out: FrameRing::new(CLIENT_RING_FRAMES, CLIENT_RING_BYTES),
            staged: Vec::new(),
            staged_pos: 0,
            dead: false,
            close_when_drained: false,
        }
    }
}

/// One outbound peer link: bounded ring in, staged coalesced write out,
/// lazy reconnect with backoff. No thread — the loop drains it.
struct OutLink {
    addr: SocketAddr,
    ring: FrameRing,
    conn: Option<TcpStream>,
    /// Whether this link has ever held a connection — distinguishes the
    /// first connect from a reconnect for the telemetry counter.
    ever_connected: bool,
    staged: Vec<u8>,
    staged_pos: usize,
    next_attempt: Instant,
    backoff: Duration,
}

impl OutLink {
    fn new(addr: SocketAddr) -> Self {
        OutLink {
            addr,
            ring: FrameRing::new(PEER_RING_FRAMES, PEER_RING_BYTES),
            conn: None,
            ever_connected: false,
            staged: Vec::new(),
            staged_pos: 0,
            next_attempt: Instant::now(),
            backoff: RECONNECT_MIN,
        }
    }
}

/// The evented backend's [`PeerSink`]: bounded rings toward every other
/// replica, with the node's fault plan consulted on every enqueue and a
/// thread-free delay lane for `DeliverAfter` frames.
struct EventedPeers {
    local: ReplicaId,
    faults: Arc<FaultPlan>,
    telemetry: Arc<NodeTelemetry>,
    links: HashMap<ReplicaId, OutLink>,
    /// Frames held back by a delay rule: `(deadline, destination,
    /// frame)`, released into the destination ring once due — frames
    /// enqueued in the meantime overtake them, producing real
    /// reordering on the wire (same semantics as the blocking outbox's
    /// delay lane).
    delayed: Vec<(Instant, ReplicaId, Arc<Vec<u8>>)>,
}

impl EventedPeers {
    fn enqueue(&mut self, to: ReplicaId, framed: Arc<Vec<u8>>) {
        if !self.links.contains_key(&to) {
            return; // self-send or unknown peer: dropped
        }
        match self.faults.decide(self.local, to) {
            FaultDecision::Deliver => {
                if let Some(link) = self.links.get_mut(&to) {
                    if !link.ring.push(framed) {
                        self.telemetry.ring_refusals.inc();
                    }
                }
            }
            FaultDecision::Drop => {}
            FaultDecision::Duplicate => {
                if let Some(link) = self.links.get_mut(&to) {
                    if !link.ring.push(Arc::clone(&framed)) {
                        self.telemetry.ring_refusals.inc();
                    }
                    if !link.ring.push(framed) {
                        self.telemetry.ring_refusals.inc();
                    }
                }
            }
            FaultDecision::DeliverAfter(delay) => {
                self.delayed.push((Instant::now() + delay, to, framed));
            }
        }
    }

    /// Moves every due delayed frame into its destination ring.
    fn release_due(&mut self, now: Instant) -> bool {
        let mut any = false;
        let mut index = 0;
        while index < self.delayed.len() {
            if self.delayed[index].0 <= now {
                let (_, to, framed) = self.delayed.remove(index);
                if let Some(link) = self.links.get_mut(&to) {
                    if !link.ring.push(framed) {
                        self.telemetry.ring_refusals.inc();
                    }
                }
                any = true;
            } else {
                index += 1;
            }
        }
        any
    }
}

impl PeerSink for EventedPeers {
    fn broadcast_frame(&mut self, framed: Arc<Vec<u8>>) {
        let peers: Vec<ReplicaId> = self.links.keys().copied().collect();
        for to in peers {
            self.enqueue(to, Arc::clone(&framed));
        }
    }

    fn send_frame(&mut self, to: ReplicaId, framed: Arc<Vec<u8>>) {
        self.enqueue(to, framed);
    }

    fn is_peer(&self, id: ReplicaId) -> bool {
        self.links.contains_key(&id)
    }
}

/// The evented backend's [`ClientSink`]: frames each reply onto the
/// client connection's bounded ring; the loop's write phase drains it.
struct EventedClients<'a> {
    conns: &'a mut Vec<Option<Conn>>,
    index: &'a HashMap<ClientId, usize>,
    telemetry: &'a NodeTelemetry,
}

impl ClientSink for EventedClients<'_> {
    fn reply(&mut self, to: ClientId, reply: Reply) {
        let Some(&slot) = self.index.get(&to) else { return };
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        // A full ring refuses the frame: at-most-once reply delivery,
        // the client's retry logic recovers (same as the blocking
        // backend's bounded writer queue).
        if !conn.out.push(Arc::new(frame(frame_kind::REPLY, &encode(&reply)))) {
            self.telemetry.ring_refusals.inc();
        }
    }
}

/// What one decoded frame means for the drive loop.
enum Parsed<M> {
    Event(Event<M>),
    PeerHello(ReplicaId),
    ClientHello(ClientId),
    /// A STATUS request: answered inline by `drain_conn`, which owns
    /// the connection's reply ring and the telemetry hub.
    Status(StatusRequest),
    /// A fault command was applied; `drain_conn` journals the event.
    Fault,
    Skip,
    Close,
}

/// Classifies one frame exactly like the blocking backend's
/// `read_connection`: hellos first, state-transfer frames pinned to the
/// hello identity, `FAULT_CONTROL` honored only with fault injection
/// enabled (and applied immediately, never through the protocol core),
/// unknown kinds tolerated.
fn parse<P: Protocol>(
    kind: u8,
    payload: &[u8],
    identity: Identity,
    faults: &FaultPlan,
    fault_injection: bool,
) -> Parsed<P::Message> {
    if identity == Identity::Unknown {
        return match kind {
            frame_kind::PEER_HELLO => match decode::<ReplicaId>(payload) {
                Ok(id) => Parsed::PeerHello(id),
                Err(_) => Parsed::Close,
            },
            frame_kind::CLIENT_HELLO => match decode::<ClientId>(payload) {
                Ok(id) => Parsed::ClientHello(id),
                Err(_) => Parsed::Close,
            },
            _ => Parsed::Close, // connection opened with a non-hello frame
        };
    }
    match kind {
        frame_kind::PROTOCOL => match decode::<P::Message>(payload) {
            Ok(msg) => Parsed::Event(Event::Peer(msg)),
            Err(_) => Parsed::Close,
        },
        frame_kind::REQUESTS => match decode(payload) {
            Ok(requests) => Parsed::Event(Event::Requests(requests)),
            Err(_) => Parsed::Close,
        },
        frame_kind::STATE_REQUEST => match decode::<StateTransferRequest>(payload) {
            // Peer connections only, and the requester must be who the
            // connection claims to be.
            Ok(req) if identity == Identity::Peer(req.replica) => {
                Parsed::Event(Event::StateRequest(req))
            }
            Ok(_) => Parsed::Skip,
            Err(_) => Parsed::Close,
        },
        frame_kind::STATE_RESPONSE => match decode::<StateTransferResponse>(payload) {
            Ok(resp) if identity == Identity::Peer(resp.replica) => {
                Parsed::Event(Event::StateResponse(resp))
            }
            Ok(_) => Parsed::Skip,
            Err(_) => Parsed::Close,
        },
        frame_kind::FAULT_CONTROL => {
            if !fault_injection {
                return Parsed::Close; // unauthenticated: protocol garbage
            }
            match decode::<FaultCommand>(payload) {
                Ok(cmd) => {
                    faults.apply(cmd);
                    Parsed::Fault
                }
                Err(_) => Parsed::Close,
            }
        }
        frame_kind::STATUS => match identity {
            // Client connections only — same stance as the blocking
            // backend (a peer sending STATUS is protocol garbage).
            Identity::Client(_) => match decode::<StatusRequest>(payload) {
                Ok(req) => Parsed::Status(req),
                Err(_) => Parsed::Close,
            },
            _ => Parsed::Close,
        },
        _ => Parsed::Skip, // tolerate unknown kinds from newer peers
    }
}

/// One bounded read + frame drain for one connection. Frames decode as
/// borrowed views straight out of the assembler's buffer — no
/// per-frame allocation between the socket and the typed event.
fn drain_conn<P: Protocol>(
    slot: usize,
    conn: &mut Conn,
    events: &mut Vec<Event<P::Message>>,
    client_index: &mut HashMap<ClientId, usize>,
    faults: &FaultPlan,
    fault_injection: bool,
    status_admin: bool,
    telemetry: &NodeTelemetry,
) -> bool {
    let mut activity = false;
    let space = conn.assembler.read_space(READ_CHUNK);
    match conn.stream.read(space) {
        Ok(0) => {
            conn.assembler.commit(0);
            conn.dead = true;
        }
        Ok(n) => {
            conn.assembler.commit(n);
            telemetry.bytes_in.add(n as u64);
            activity = true;
        }
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted) => {
            conn.assembler.commit(0);
        }
        Err(_) => {
            conn.assembler.commit(0);
            conn.dead = true;
        }
    }
    loop {
        let identity = conn.identity;
        let step = match conn.assembler.next_frame() {
            Ok(None) => break,
            Err(_) => Parsed::Close, // framing garbage: magic/length violation
            Ok(Some(view)) => {
                parse::<P>(view.kind, view.payload, identity, faults, fault_injection)
            }
        };
        match step {
            Parsed::Event(event) => {
                events.push(event);
                activity = true;
            }
            Parsed::PeerHello(id) => conn.identity = Identity::Peer(id),
            Parsed::ClientHello(id) => {
                conn.identity = Identity::Client(id);
                // A reconnecting client replaces its own old entry.
                client_index.insert(id, slot);
            }
            Parsed::Status(req) => {
                activity = true;
                let response = match req.verb {
                    StatusVerb::Snapshot => StatusResponse::Snapshot(telemetry.snapshot()),
                    StatusVerb::Events { since } => StatusResponse::Events {
                        head: telemetry.journal.head(),
                        events: telemetry.journal.since(since),
                    },
                    StatusVerb::Drain if status_admin => {
                        // The loop polls the draining flag every pass
                        // and self-feeds `Event::Drain` until the seal
                        // lands — no channel needed here.
                        telemetry.request_drain();
                        StatusResponse::DrainStarted
                    }
                    StatusVerb::Drain => {
                        // Ungated admin verb: answer Refused, then close
                        // once the frame drains (the ungated
                        // fault-control stance, but with an explicit
                        // refusal the caller can decode).
                        conn.out.push(Arc::new(frame(
                            frame_kind::STATUS,
                            &encode(&StatusResponse::Refused),
                        )));
                        conn.close_when_drained = true;
                        break;
                    }
                };
                conn.out.push(Arc::new(frame(frame_kind::STATUS, &encode(&response))));
            }
            Parsed::Fault => {
                telemetry.record_event(StatusEvent::FaultPlanApplied);
            }
            Parsed::Skip => {}
            Parsed::Close => {
                conn.dead = true;
                break;
            }
        }
    }
    activity
}

/// Connects to a peer and performs the `PEER_HELLO` handshake (written
/// while still blocking — it is 15 bytes), then flips to nonblocking.
fn connect_with_hello(local: ReplicaId, addr: SocketAddr) -> Option<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT).ok()?;
    let _ = stream.set_nodelay(true);
    write_value(&mut stream, frame_kind::PEER_HELLO, &local).ok()?;
    stream.set_nonblocking(true).ok()?;
    Some(stream)
}

/// Restages queued frames into one contiguous write buffer (one
/// syscall's worth of coalescing, bounded by the batch policy).
fn restage(staged: &mut Vec<u8>, staged_pos: &mut usize, ring: &mut FrameRing, policy: BatchPolicy) {
    if *staged_pos < staged.len() || ring.is_empty() {
        return; // previous batch still in flight, or nothing queued
    }
    staged.clear();
    *staged_pos = 0;
    let mut frames = 0;
    while frames < policy.max_frames && staged.len() < policy.max_bytes {
        match ring.pop() {
            Some(framed) => {
                staged.extend_from_slice(&framed);
                frames += 1;
            }
            None => break,
        }
    }
}

/// Pushes one link's staged bytes into its socket, (re)connecting as
/// needed. A write error drops the connection *and the staged batch* —
/// resuming a half-written batch on a fresh connection would desync the
/// peer's frame stream, and the at-most-once contract already covers
/// the loss (same stance as the blocking outbox, which drops a batch
/// after one failed reconnect cycle).
fn flush_link(
    local: ReplicaId,
    link: &mut OutLink,
    policy: BatchPolicy,
    now: Instant,
    telemetry: &NodeTelemetry,
) -> bool {
    restage(&mut link.staged, &mut link.staged_pos, &mut link.ring, policy);
    if link.staged_pos >= link.staged.len() {
        return false;
    }
    if link.conn.is_none() {
        if now < link.next_attempt {
            return false;
        }
        match connect_with_hello(local, link.addr) {
            Some(stream) => {
                if link.ever_connected {
                    telemetry.reconnects.add(1);
                }
                link.ever_connected = true;
                link.conn = Some(stream);
                link.backoff = RECONNECT_MIN;
            }
            None => {
                link.next_attempt = now + link.backoff;
                link.backoff = (link.backoff * 2).min(RECONNECT_MAX);
                return false;
            }
        }
    }
    let Some(stream) = link.conn.as_mut() else { return false };
    let mut wrote = false;
    loop {
        match stream.write(&link.staged[link.staged_pos..]) {
            Ok(0) => {
                link.conn = None;
                link.staged_pos = link.staged.len();
                break;
            }
            Ok(n) => {
                link.staged_pos += n;
                telemetry.bytes_out.add(n as u64);
                wrote = true;
                if link.staged_pos >= link.staged.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                link.conn = None;
                link.staged_pos = link.staged.len();
                break;
            }
        }
    }
    wrote
}

/// Drains one client connection's reply ring into its socket.
fn flush_conn(conn: &mut Conn, policy: BatchPolicy) -> bool {
    restage(&mut conn.staged, &mut conn.staged_pos, &mut conn.out, policy);
    if conn.staged_pos >= conn.staged.len() {
        return false;
    }
    let mut wrote = false;
    loop {
        match conn.stream.write(&conn.staged[conn.staged_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.staged_pos += n;
                wrote = true;
                if conn.staged_pos >= conn.staged.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    wrote
}

fn event_loop<P: Protocol>(
    listener: TcpListener,
    config: TcpNodeConfig,
    protocol: P,
    shutdown: Arc<AtomicBool>,
    gauges: Gauges,
) {
    let id = config.id;
    let telemetry = Arc::clone(&gauges.telemetry);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut client_index: HashMap<ClientId, usize> = HashMap::new();
    let mut peers = EventedPeers {
        local: id,
        faults: Arc::clone(&config.faults),
        telemetry: Arc::clone(&telemetry),
        links: config
            .peers
            .iter()
            .filter(|p| p.id != id)
            .map(|p| (p.id, OutLink::new(p.addr)))
            .collect(),
        delayed: Vec::new(),
    };
    let mut host = Host::new(id, protocol, config.recovery, gauges, &mut peers);

    let mut next_tick = config.timeout_every.map(|period| Instant::now() + period);
    let mut events: Vec<Event<P::Message>> = Vec::new();
    let mut batch_outputs = Vec::new();
    let mut batch_events = 0usize;
    let mut batch_deadline: Option<Instant> = None;
    let mut idle = IDLE_MIN;

    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        let mut activity = false;

        // Accept everything pending.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let conn = Conn::new(stream);
                    match conns.iter().position(Option::is_none) {
                        Some(slot) => conns[slot] = Some(conn),
                        None => conns.push(Some(conn)),
                    }
                    activity = true;
                }
                Err(_) => break, // WouldBlock or transient accept error
            }
        }

        // Timer tick.
        if let (Some(tick), Some(period)) = (next_tick, config.timeout_every) {
            if now >= tick {
                events.push(Event::Timeout);
                next_tick = Some(now + period);
            }
        }

        // Read phase: one bounded read per connection, decoded in place.
        for slot in 0..conns.len() {
            if let Some(conn) = conns[slot].as_mut() {
                if !conn.dead
                    && drain_conn::<P>(
                        slot,
                        conn,
                        &mut events,
                        &mut client_index,
                        &config.faults,
                        config.fault_injection,
                        config.status_admin,
                        &telemetry,
                    )
                {
                    activity = true;
                }
            }
        }

        // An active drain self-feeds: force a batch every pass until
        // the epilogue in `finish_batch` seals the checkpoint and marks
        // the node drained.
        if telemetry.draining() && !telemetry.drained() {
            events.push(Event::Drain);
        }

        // Protocol phase: this pass's events join the open drain batch.
        if !events.is_empty() {
            activity = true;
            for event in events.drain(..) {
                batch_outputs.extend(host.handle(event, &mut peers));
                batch_events += 1;
            }
        }
        // Group commit: with no linger every pass flushes; with linger
        // the batch stays open across passes until the deadline or the
        // size cap, sharing one fsync.
        let flush_now = batch_events > 0
            && (config.group_commit.is_zero()
                || batch_events >= MAX_DRAIN_BATCH
                || now >= *batch_deadline.get_or_insert(now + config.group_commit));
        if flush_now {
            telemetry.queue_depth_high_water.record_max(batch_events as u64);
            host.finish_batch(
                std::mem::take(&mut batch_outputs),
                &mut peers,
                &mut EventedClients {
                    conns: &mut conns,
                    index: &client_index,
                    telemetry: &telemetry,
                },
            );
            batch_events = 0;
            batch_deadline = None;
        }

        // Write phase: delayed-fault releases, then peer links, then
        // client reply rings.
        if peers.release_due(now) {
            activity = true;
        }
        for link in peers.links.values_mut() {
            if flush_link(id, link, config.batch, now, &telemetry) {
                activity = true;
            }
        }
        for conn in conns.iter_mut().flatten() {
            if flush_conn(conn, config.batch) {
                activity = true;
            }
        }

        // Reap dead connections (dropping the socket closes it), plus
        // refused-admin connections whose final frame has flushed.
        for slot in 0..conns.len() {
            let reap = conns[slot].as_ref().is_some_and(|c| {
                c.dead
                    || (c.close_when_drained
                        && c.out.is_empty()
                        && c.staged_pos >= c.staged.len())
            });
            if reap {
                let conn = conns[slot].take().expect("checked above");
                if let Identity::Client(client) = conn.identity {
                    // Only our own registration: a reconnected client
                    // already points at a newer slot.
                    if client_index.get(&client) == Some(&slot) {
                        client_index.remove(&client);
                    }
                }
            }
        }

        // Idle backoff, capped so a sleep never overshoots the next
        // timer tick or the open batch's flush deadline.
        if activity {
            idle = IDLE_MIN;
        } else {
            let mut nap = idle;
            for deadline in [next_tick, batch_deadline].into_iter().flatten() {
                nap = nap.min(deadline.saturating_duration_since(now));
            }
            if let Some(next_delay) = peers.delayed.iter().map(|(at, _, _)| *at).min() {
                nap = nap.min(next_delay.saturating_duration_since(now));
            }
            if !nap.is_zero() {
                std::thread::sleep(nap);
            }
            idle = (idle * 2).min(IDLE_MAX);
        }
    }

    // Close out the open batch so durable state hits its fsync before
    // the node disappears.
    if batch_events > 0 {
        host.finish_batch(
            std::mem::take(&mut batch_outputs),
            &mut peers,
            &mut EventedClients {
                conns: &mut conns,
                index: &client_index,
                telemetry: &telemetry,
            },
        );
    }
}
