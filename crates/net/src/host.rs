//! The transport-independent replica hosting core.
//!
//! Every socket backend — blocking thread-per-connection
//! ([`crate::tcp`]) and the evented readiness loop ([`crate::evented`])
//! — hosts a [`Protocol`] the same way: decode frames into [`Event`]s,
//! feed them to the state machine one drain batch at a time, fsync once
//! per batch, then route the outputs. This module owns that shared core
//! ([`Host`]), including the request-aware view-change timer and the
//! state-transfer client, so backends differ only in how bytes move.
//!
//! Backends plug in through two small sinks: [`PeerSink`] (pre-framed
//! bytes toward other replicas) and [`ClientSink`] (replies toward
//! connected clients). The sinks speak frames, not typed messages, so a
//! broadcast encodes once regardless of fan-out — and so the core stays
//! byte-identical on the wire across backends.

use crate::transport::{frame_kind, Protocol, ProtocolOutput, WireMessage};
use splitbft_obs::NodeTelemetry;
use splitbft_types::wire::{decode, encode, frame};
use splitbft_types::{
    ClientId, ReplicaId, Reply, Request, SeqNum, StateTransferRequest, StateTransferResponse,
    StatusEvent,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// State-transfer policy for a node that hosts a durable (or merely
/// lagging-tolerant) protocol.
///
/// When set, the node broadcasts a `STATE_REQUEST` to every peer at
/// startup and re-requests on each timer tick while it is making no
/// progress; peer checkpoints are applied once `agreement` responders
/// vouch for the same `(seq, digest)` — with `agreement = f + 1` at
/// least one of them is correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Matching peer checkpoints required before restoring (`f + 1`).
    pub agreement: usize,
}

/// One input to the hosted protocol, already decoded from the wire (or
/// synthesized by the backend's timer/shutdown machinery).
pub(crate) enum Event<M> {
    /// A protocol message from a peer replica.
    Peer(M),
    /// A batch of client requests.
    Requests(Vec<Request>),
    /// A peer asks for our checkpoint + log suffix.
    StateRequest(StateTransferRequest),
    /// A peer's answer to our state request.
    StateResponse(StateTransferResponse),
    /// View-change timer tick.
    Timeout,
    /// A graceful drain was requested (SIGTERM or the STATUS admin
    /// verb). The request itself is recorded on the node's telemetry
    /// before this event is queued; the event exists only to force a
    /// drain batch through [`Host::finish_batch`], where the drain
    /// epilogue (seal + flush) runs once nothing is pending.
    Drain,
    /// Stop hosting. Handled by the backend's drive loop, never by
    /// [`Host::handle`].
    Shutdown,
}

/// A backend's outbound path toward peer replicas. Frames are pre-built
/// (header + payload) and `Arc`-shared so broadcasts clone pointers,
/// not buffers.
pub(crate) trait PeerSink {
    /// Queues `framed` toward every other replica.
    fn broadcast_frame(&mut self, framed: Arc<Vec<u8>>);
    /// Queues `framed` toward `to`; silently dropped when `to` is this
    /// replica itself or unknown (protocol cores process their own copy
    /// internally before emitting).
    fn send_frame(&mut self, to: ReplicaId, framed: Arc<Vec<u8>>);
    /// `true` when `id` is another member of this cluster.
    fn is_peer(&self, id: ReplicaId) -> bool;
}

/// A backend's outbound path toward connected clients. Delivery is
/// at-most-once: a gone or stalled client loses the reply and its own
/// retry logic recovers.
pub(crate) trait ClientSink {
    /// Queues `reply` toward client `to`.
    fn reply(&mut self, to: ClientId, reply: Reply);
}

/// Shared gauges a backend exposes to orchestrators (benches, tests):
/// mirrors of the hosted protocol's progress/fsync counters, updated by
/// [`Host::finish_batch`] after every drain batch — plus the node's
/// [`NodeTelemetry`] bundle, which the same batch epilogue publishes
/// the full gauge set into.
#[derive(Debug, Clone)]
pub(crate) struct Gauges {
    /// Mirror of [`Protocol::progress`].
    pub(crate) progress: Arc<AtomicU64>,
    /// Mirror of [`Protocol::durable_fsyncs`].
    pub(crate) fsyncs: Arc<AtomicU64>,
    /// Per-shard mirror of `(shard_progress(), shard_fsyncs())`. Behind
    /// one lock because readers are occasional orchestrators, not hot
    /// paths.
    pub(crate) shards: Arc<Mutex<(Vec<u64>, Vec<u64>)>>,
    /// The node's telemetry bundle (metrics registry, event journal,
    /// lifecycle flags), shared with the transport layer and whatever
    /// serves `/metrics` and `STATUS`.
    pub(crate) telemetry: Arc<NodeTelemetry>,
}

impl Gauges {
    pub(crate) fn new(telemetry: Arc<NodeTelemetry>) -> Self {
        Gauges {
            progress: Arc::default(),
            fsyncs: Arc::default(),
            shards: Arc::default(),
            telemetry,
        }
    }
}

/// Upper bound on events coalesced into one group-commit drain batch,
/// so a flooded queue still flushes (and routes) regularly.
pub(crate) const MAX_DRAIN_BATCH: usize = 128;

/// How long one `STATE_REQUEST` round stays in flight before a
/// no-progress tick may broadcast a new one. Without this guard every
/// tick of a stalled replica re-requested, hammering slow responders
/// with duplicate transfers of the same (possibly large) state.
const STATE_TRANSFER_RETRY: Duration = Duration::from_millis(1500);

/// The state-transfer client's bookkeeping inside the hosting core.
///
/// Two rules keep a catching-up replica from livelocking against
/// sustained load (the chaos-plane rolling-restart stall this design
/// fixes):
///
/// - **Productive rounds retry immediately.** Peers serve the log
///   suffix in bounded chunks, so closing a large gap takes many
///   rounds. If every round had to wait out [`STATE_TRANSFER_RETRY`],
///   transfer throughput would be capped at one chunk per deadline —
///   slower than a loaded cluster commits, so the gap could grow
///   faster than it closed. A round whose response advanced progress
///   therefore clears the in-flight guard and the next tick
///   re-requests at the new offset; only *unproductive* rounds are
///   rate-limited.
/// - **Responses outlive request rounds.** Checkpoint agreement needs
///   `f + 1` matching `(seq, digest)` votes, and peers seal
///   checkpoints at their own pace — votes for the same checkpoint
///   can straddle a re-request boundary. Keeping the latest response
///   per peer across rounds (bounded by cluster size) lets a late
///   matching vote complete the quorum instead of being forgotten.
struct Recovery {
    policy: RecoveryPolicy,
    /// Still hunting for peer state. Cleared once progress flows from
    /// live traffic rather than transfers; a running replica that later
    /// falls behind catches up through the protocol's own checkpoint
    /// stream instead.
    active: bool,
    /// Progress attributable to startup recovery plus state transfer:
    /// anything beyond it was made organically. Raised by exactly the
    /// progress each transfer application buys (not to the protocol's
    /// total progress, which would swallow organic progress made
    /// earlier in the same drain batch).
    baseline: u64,
    /// Latest response per peer, kept across request rounds (see the
    /// struct docs for why).
    responses: HashMap<ReplicaId, StateTransferResponse>,
    /// When the in-flight request round was sent; a new round may only
    /// go out once [`STATE_TRANSFER_RETRY`] has elapsed — or
    /// immediately, if the round already proved productive and the
    /// guard was cleared.
    requested_at: Option<Instant>,
}

impl Recovery {
    /// `baseline` is the protocol's progress at startup — anything the
    /// local WAL/checkpoint recovery already restored is not "organic"
    /// progress and must not end the hunt by itself.
    fn new(policy: RecoveryPolicy, baseline: u64) -> Self {
        Recovery {
            policy,
            active: true,
            baseline,
            responses: HashMap::new(),
            requested_at: None,
        }
    }

    /// `true` once the current round's retry deadline has passed, no
    /// round was ever sent, or the current round was productive.
    fn may_request(&self) -> bool {
        self.requested_at.is_none_or(|at| at.elapsed() >= STATE_TRANSFER_RETRY)
    }
}

/// The hosting core: one hosted [`Protocol`] plus the request-aware
/// view-change timer and the state-transfer client, independent of how
/// frames reach the process.
///
/// A backend's drive loop calls [`Host::handle`] for every decoded
/// event of a drain batch, accumulates the returned outputs, then calls
/// [`Host::finish_batch`] once — the group-commit point: a single fsync
/// covers the batch, outputs are routed strictly after it, deferred
/// peer state requests are answered after that, and the gauges publish.
pub(crate) struct Host<P: Protocol> {
    id: ReplicaId,
    protocol: P,
    recovery: Option<Recovery>,
    /// Request-aware view-change timer state: a tick forwards to the
    /// protocol's timeout handler only when a request has been pending
    /// across one full period with no commit progress — so the primary
    /// gets a whole tick to make progress (`armed`), idle clusters
    /// never churn views, and a genuinely stalled request still fails
    /// over on the second tick.
    armed: bool,
    last_progress: u64,
    /// Peer `STATE_REQUEST`s seen this batch, *deferred* to
    /// [`Host::finish_batch`]: a response reads the protocol's current
    /// durable checkpoint and log suffix, which mid-batch may rest on
    /// WAL records the group-commit fsync has not covered yet —
    /// answering after the batch's `flush_durable` keeps the
    /// nothing-on-the-wire-before-fsync invariant for state transfer
    /// too.
    state_requests: Vec<StateTransferRequest>,
    gauges: Gauges,
    /// Last published view / seal count — change detectors for the
    /// view-change counter and the journal's `ViewChange` /
    /// `CheckpointSealed` events, compared once per drain batch.
    last_view: u64,
    last_seals: u64,
}

impl<P: Protocol> Host<P> {
    /// Wraps `protocol` for hosting. When `recovery` is set, the
    /// startup `STATE_REQUEST` round goes out through `peers` right
    /// away.
    pub(crate) fn new(
        id: ReplicaId,
        protocol: P,
        recovery: Option<RecoveryPolicy>,
        gauges: Gauges,
        peers: &mut impl PeerSink,
    ) -> Self {
        let baseline = protocol.progress();
        let mut recovery = recovery.map(|policy| Recovery::new(policy, baseline));
        if let Some(rec) = &mut recovery {
            rec.requested_at = Some(Instant::now());
            request_state(id, baseline, peers);
            gauges.telemetry.set_recovering(true);
        }
        let last_view = protocol.current_view();
        let last_seals = protocol.checkpoint_seal_count();
        Host {
            id,
            protocol,
            recovery,
            armed: false,
            last_progress: baseline,
            state_requests: Vec::new(),
            gauges,
            last_view,
            last_seals,
        }
    }

    /// The hosted protocol's current progress.
    #[cfg(test)]
    pub(crate) fn progress(&self) -> u64 {
        self.protocol.progress()
    }

    /// `true` while the state-transfer client is still hunting for
    /// peer state.
    #[cfg(test)]
    pub(crate) fn recovering(&self) -> bool {
        self.recovery.as_ref().is_some_and(|rec| rec.active)
    }

    /// Handles one event, returning the outputs to accumulate for
    /// [`Host::finish_batch`]. [`Event::Shutdown`] is the drive loop's
    /// job and never reaches here.
    pub(crate) fn handle(
        &mut self,
        event: Event<P::Message>,
        peers: &mut impl PeerSink,
    ) -> Vec<ProtocolOutput<P::Message>> {
        match event {
            Event::Peer(msg) => self.protocol.on_message(msg),
            Event::Requests(requests) => {
                if self.gauges.telemetry.draining() {
                    // Draining: stop admitting new client requests. The
                    // client's retry logic finds another replica (or the
                    // restarted one).
                    return Vec::new();
                }
                self.protocol.on_client_requests(requests)
            }
            Event::Drain => Vec::new(),
            Event::StateRequest(req) => {
                self.state_requests.push(req);
                Vec::new()
            }
            Event::StateResponse(resp) => match &mut self.recovery {
                // Only cluster members' responses count toward the
                // f + 1 agreement (the backend already pinned the id to
                // the connection's hello).
                Some(rec) if rec.active && peers.is_peer(resp.replica) => {
                    apply_state_response(
                        &mut self.protocol,
                        rec,
                        resp,
                        &self.gauges.telemetry,
                    )
                }
                _ => Vec::new(),
            },
            Event::Timeout => {
                let progress = self.protocol.progress();
                // Recovery retry: progress beyond the baseline means
                // live traffic is executing again — the hunt is over.
                // Otherwise re-request (peers answer with ever-newer
                // checkpoints until the gap closes) — immediately after
                // a productive round, else once the in-flight round's
                // retry deadline passes.
                if let Some(rec) = &mut self.recovery {
                    if rec.active {
                        if progress > rec.baseline {
                            rec.active = false;
                            rec.responses.clear();
                            self.gauges.telemetry.set_recovering(false);
                        } else if rec.may_request() {
                            rec.baseline = progress;
                            rec.requested_at = Some(Instant::now());
                            request_state(self.id, progress, peers);
                        }
                    }
                }
                let pending = self.protocol.has_pending_requests();
                let fire = pending && self.armed && progress == self.last_progress;
                self.armed = pending && !fire;
                self.last_progress = progress;
                if fire {
                    self.protocol.on_timeout()
                } else {
                    Vec::new()
                }
            }
            Event::Shutdown => unreachable!("shutdown handled by the backend's drive loop"),
        }
    }

    /// Completes one drain batch: performs the batch's single fsync
    /// ([`Protocol::flush_durable`]), routes `outputs` plus whatever
    /// the fsync released, answers deferred peer state requests
    /// strictly after the fsync, and publishes the gauges.
    pub(crate) fn finish_batch(
        &mut self,
        mut outputs: Vec<ProtocolOutput<P::Message>>,
        peers: &mut impl PeerSink,
        clients: &mut impl ClientSink,
    ) {
        outputs.extend(self.protocol.flush_durable());
        // Graceful-drain epilogue: once a drain was requested, no new
        // requests are admitted (see [`Host::handle`]); the first batch
        // that ends with nothing pending seals a final checkpoint and
        // flushes the WAL, then marks the drain complete so the
        // backend's serve loop can exit 0.
        let telemetry = Arc::clone(&self.gauges.telemetry);
        if telemetry.draining()
            && !telemetry.drained()
            && !self.protocol.has_pending_requests()
        {
            outputs.extend(self.protocol.drain_seal());
            outputs.extend(self.protocol.flush_durable());
            telemetry.complete_drain();
        }
        for output in outputs {
            route(output, peers, clients);
        }
        for req in self.state_requests.drain(..) {
            answer_state_request(self.id, &self.protocol, &req, peers);
        }
        let progress = self.protocol.progress();
        self.gauges.progress.store(progress, Ordering::SeqCst);
        self.gauges.fsyncs.store(self.protocol.durable_fsyncs(), Ordering::SeqCst);
        let shard_progress = self.protocol.shard_progress();
        let shard_fsyncs = self.protocol.shard_fsyncs();
        {
            let mut shards = self.gauges.shards.lock().expect("shard gauges");
            shards.0 = shard_progress.clone();
            shards.1 = shard_fsyncs.clone();
        }

        // Publish the batch's telemetry: single atomic stores on the
        // pre-registered handles, plus change detection for the
        // view-change counter and the journal events.
        telemetry.progress.set(progress);
        telemetry.fsyncs.set(self.protocol.durable_fsyncs());
        telemetry.wal_bytes.set(self.protocol.wal_bytes());
        telemetry.pending_requests.set(self.protocol.pending_request_count());
        let view = self.protocol.current_view();
        telemetry.view.set(view);
        if view > self.last_view {
            telemetry.view_changes.add(view - self.last_view);
            telemetry.record_event(StatusEvent::ViewChange { view });
            self.last_view = view;
        }
        let seals = self.protocol.checkpoint_seal_count();
        telemetry.checkpoint_seals.set(seals);
        if seals > self.last_seals {
            telemetry.record_event(StatusEvent::CheckpointSealed { seq: progress });
            self.last_seals = seals;
        }
        telemetry.set_shard_gauges(&shard_progress, &shard_fsyncs);
        telemetry.set_shard_views(&self.protocol.shard_views());
    }
}

/// Broadcasts a `STATE_REQUEST` to every peer.
fn request_state(id: ReplicaId, have_seq: u64, peers: &mut impl PeerSink) {
    let req = StateTransferRequest { replica: id, have_seq: SeqNum(have_seq) };
    peers.broadcast_frame(Arc::new(frame(frame_kind::STATE_REQUEST, &encode(&req))));
}

/// Serves one peer's `STATE_REQUEST`: current durable checkpoint plus
/// the retained log suffix above the requester's progress. `local` is
/// the responding replica's own id.
fn answer_state_request<P: Protocol>(
    local: ReplicaId,
    protocol: &P,
    req: &StateTransferRequest,
    peers: &mut impl PeerSink,
) {
    if !peers.is_peer(req.replica) {
        return;
    }
    let checkpoint = protocol.durable_checkpoint();
    let suffix = protocol.catch_up_messages(req.have_seq);
    if checkpoint.is_none() && suffix.is_empty() {
        return; // nothing to offer (genesis node)
    }
    let resp = StateTransferResponse {
        replica: local,
        checkpoint,
        suffix: encode(&suffix).into(),
    };
    peers.send_frame(req.replica, Arc::new(frame(frame_kind::STATE_RESPONSE, &encode(&resp))));
}

/// Ingests one peer's state response: its catch-up messages feed the
/// normal (verifying) message path immediately; its checkpoint is held
/// until `agreement` peers vouch for the same `(seq, digest)`, then
/// restored and the suffixes replayed.
///
/// Progress is recorded as typed journal events
/// ([`StatusEvent::StateTransferApplied`],
/// [`StatusEvent::CheckpointRestored`]) which fault-injection
/// orchestrators (`splitbft-chaos`) poll over the `STATUS` frame to
/// distinguish a log-suffix rejoin from a checkpoint restore.
fn apply_state_response<P: Protocol>(
    protocol: &mut P,
    rec: &mut Recovery,
    resp: StateTransferResponse,
    telemetry: &NodeTelemetry,
) -> Vec<ProtocolOutput<P::Message>> {
    let before = protocol.progress();
    // Every offered peer checkpoint raises the catch-up watermark:
    // `/readyz` stays 503 until this node's progress closes to within
    // the gap of the best checkpoint any peer has shown it.
    if let Some(cp) = &resp.checkpoint {
        telemetry.catchup_target.record_max(cp.seq.0);
    }
    let mut outputs = feed_suffix(protocol, &resp, telemetry);
    rec.responses.insert(resp.replica, resp);

    // Checkpoint agreement: group by (seq, digest), newest qualifying
    // group first.
    let mut groups: HashMap<(u64, splitbft_types::Digest), usize> = HashMap::new();
    for r in rec.responses.values() {
        if let Some(cp) = &r.checkpoint {
            if cp.seq.0 > protocol.progress() {
                *groups.entry((cp.seq.0, cp.digest)).or_insert(0) += 1;
            }
        }
    }
    let agreed = groups
        .into_iter()
        .filter(|(_, n)| *n >= rec.policy.agreement)
        .max_by_key(|((seq, _), _)| *seq);
    if let Some(((seq, digest), _)) = agreed {
        let agreed = rec
            .responses
            .values()
            .find(|r| {
                r.checkpoint
                    .as_ref()
                    .is_some_and(|cp| cp.seq.0 == seq && cp.digest == digest)
            })
            .and_then(|r| r.checkpoint.clone())
            .expect("group was built from these responses");
        let agreeing = rec
            .responses
            .values()
            .filter(|r| {
                r.checkpoint.as_ref().is_some_and(|cp| cp.seq.0 == seq && cp.digest == digest)
            })
            .count();
        if protocol.restore_checkpoint(&agreed).is_ok() {
            telemetry.record_event(StatusEvent::CheckpointRestored {
                seq,
                agreeing_peers: agreeing as u64,
            });
            // Replay every stored suffix on top of the restored state:
            // what was out of the watermark window before the restore
            // lands now.
            let responses: Vec<StateTransferResponse> =
                rec.responses.values().cloned().collect();
            for r in &responses {
                outputs.extend(feed_suffix(protocol, r, telemetry));
            }
            rec.responses.clear();
        }
    }
    // Progress made *by* the transfer is not organic progress: raise
    // the baseline by exactly what this application bought, so only
    // live-traffic execution (including any made earlier in the same
    // drain batch) ends the hunt.
    let gained = protocol.progress().saturating_sub(before);
    rec.baseline = rec.baseline.saturating_add(gained);
    if gained > 0 {
        // A productive round: clear the in-flight guard so the next
        // tick immediately requests the next chunk instead of waiting
        // out the retry deadline (the rolling-restart livelock fix —
        // chunked transfer must outpace the live commit rate).
        rec.requested_at = None;
    }
    outputs
}

/// Feeds one response's suffix messages through the protocol's normal
/// verifying message path, collecting any outputs for routing.
fn feed_suffix<P: Protocol>(
    protocol: &mut P,
    resp: &StateTransferResponse,
    telemetry: &NodeTelemetry,
) -> Vec<ProtocolOutput<P::Message>> {
    let Ok(msgs) = decode::<Vec<P::Message>>(&resp.suffix) else {
        return Vec::new(); // malformed suffix: ignore the responder
    };
    if msgs.is_empty() {
        return Vec::new();
    }
    let count = msgs.len();
    let before = protocol.progress();
    let mut outputs = Vec::new();
    for msg in msgs {
        outputs.extend(protocol.on_message(msg));
    }
    // Recorded *after* feeding, with the execution progress the suffix
    // actually bought — acceptance is protocol-internal (each message
    // re-verifies like network input), so the progress delta, not the
    // count, is the honest rejoin evidence.
    telemetry.record_event(StatusEvent::StateTransferApplied {
        messages: count as u64,
        from_progress: before,
        to_progress: protocol.progress(),
    });
    outputs
}

/// Routes one protocol output through the backend's sinks.
pub(crate) fn route<M: WireMessage>(
    output: ProtocolOutput<M>,
    peers: &mut impl PeerSink,
    clients: &mut impl ClientSink,
) {
    match output {
        ProtocolOutput::Broadcast(msg) => {
            // Encode and frame once; every peer link shares the buffer.
            peers.broadcast_frame(Arc::new(frame(frame_kind::PROTOCOL, &encode(&msg))));
        }
        ProtocolOutput::Send { to, msg } => {
            peers.send_frame(to, Arc::new(frame(frame_kind::PROTOCOL, &encode(&msg))));
        }
        ProtocolOutput::Reply { to, reply } => clients.reply(to, reply),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_types::wire::parse_frame;
    use splitbft_types::{Digest, DurableCheckpoint, ProtocolError};

    /// A protocol whose progress is simply the largest message value it
    /// has seen — enough to distinguish organic progress (fed as
    /// [`Event::Peer`]) from transfer progress (fed through suffixes)
    /// at the hosting layer.
    struct CatchUp {
        progress: u64,
    }

    impl Protocol for CatchUp {
        type Message = u64;

        fn on_message(&mut self, msg: u64) -> Vec<ProtocolOutput<u64>> {
            self.progress = self.progress.max(msg);
            Vec::new()
        }

        fn on_client_requests(&mut self, _requests: Vec<Request>) -> Vec<ProtocolOutput<u64>> {
            Vec::new()
        }

        fn on_timeout(&mut self) -> Vec<ProtocolOutput<u64>> {
            Vec::new()
        }

        fn progress(&self) -> u64 {
            self.progress
        }

        fn has_pending_requests(&self) -> bool {
            false
        }

        fn restore_checkpoint(&mut self, cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
            self.progress = self.progress.max(cp.seq.0);
            Ok(())
        }
    }

    /// A recording peer sink: keeps every frame and decodes the state
    /// requests back out for assertions.
    struct Peers {
        members: Vec<ReplicaId>,
        frames: Vec<Arc<Vec<u8>>>,
    }

    impl Peers {
        fn new(members: &[u32]) -> Self {
            Peers { members: members.iter().map(|&id| ReplicaId(id)).collect(), frames: Vec::new() }
        }

        fn state_requests(&self) -> Vec<StateTransferRequest> {
            self.frames
                .iter()
                .filter_map(|framed| {
                    let (view, _) = parse_frame(framed).expect("well-formed frame")?;
                    (view.kind == frame_kind::STATE_REQUEST)
                        .then(|| decode(view.payload).expect("state request payload"))
                })
                .collect()
        }
    }

    impl PeerSink for Peers {
        fn broadcast_frame(&mut self, framed: Arc<Vec<u8>>) {
            self.frames.push(framed);
        }

        fn send_frame(&mut self, _to: ReplicaId, framed: Arc<Vec<u8>>) {
            self.frames.push(framed);
        }

        fn is_peer(&self, id: ReplicaId) -> bool {
            self.members.contains(&id)
        }
    }

    struct NoClients;

    impl ClientSink for NoClients {
        fn reply(&mut self, _to: ClientId, _reply: Reply) {}
    }

    fn response(
        from: u32,
        suffix_to: Option<u64>,
        checkpoint: Option<(u64, u8)>,
    ) -> StateTransferResponse {
        StateTransferResponse {
            replica: ReplicaId(from),
            checkpoint: checkpoint.map(|(seq, d)| DurableCheckpoint {
                seq: SeqNum(seq),
                digest: Digest([d; 32]),
                state: bytes::Bytes::new(),
            }),
            suffix: encode(&suffix_to.into_iter().collect::<Vec<u64>>()).into(),
        }
    }

    fn recovering_host(
        agreement: usize,
        peers: &mut Peers,
    ) -> Host<CatchUp> {
        Host::new(
            ReplicaId(0),
            CatchUp { progress: 0 },
            Some(RecoveryPolicy { agreement }),
            Gauges::new(NodeTelemetry::new(0)),
            peers,
        )
    }

    /// Regression test for the rolling-restart state-transfer livelock:
    /// peers serve the suffix in bounded chunks, so throttling
    /// *productive* rounds to the retry deadline capped transfer
    /// throughput below a loaded cluster's commit rate — the victim's
    /// gap grew faster than it closed. A round that advanced progress
    /// must re-request on the very next tick.
    #[test]
    fn productive_transfer_rounds_rerequest_on_the_next_tick() {
        let mut peers = Peers::new(&[1, 2]);
        let mut host = recovering_host(1, &mut peers);
        assert_eq!(peers.state_requests().len(), 1, "startup round");

        // Peer 1's chunk advances progress 0 -> 5: a productive round.
        let outputs = host.handle(Event::StateResponse(response(1, Some(5), None)), &mut peers);
        assert!(outputs.is_empty());
        assert_eq!(host.progress(), 5);

        // The next tick fires well within the 1.5 s retry deadline and
        // must still open the next round, at the new offset.
        host.handle(Event::Timeout, &mut peers);
        let requests = peers.state_requests();
        assert_eq!(requests.len(), 2, "productive rounds are not rate-limited");
        assert_eq!(requests[1].have_seq, SeqNum(5), "re-request starts where the chunk ended");
    }

    /// The converse guard: a round that bought nothing stays behind the
    /// retry deadline, so a dead or empty responder is not hammered.
    #[test]
    fn unproductive_rounds_stay_rate_limited() {
        let mut peers = Peers::new(&[1, 2]);
        let mut host = recovering_host(1, &mut peers);

        host.handle(Event::StateResponse(response(1, None, None)), &mut peers);
        for _ in 0..5 {
            host.handle(Event::Timeout, &mut peers);
        }
        assert_eq!(
            peers.state_requests().len(),
            1,
            "only the startup round may be in flight within the retry deadline"
        );
        assert!(host.recovering(), "the hunt continues until progress flows");
    }

    /// Organic progress made earlier in the same drain batch as a
    /// transfer application must still end the hunt: the baseline is
    /// raised by exactly what the transfer bought, not to the
    /// protocol's total progress (which silently swallowed the organic
    /// share and kept the hunt alive forever under sustained load).
    #[test]
    fn organic_progress_in_a_transfer_batch_still_ends_the_hunt() {
        let mut peers = Peers::new(&[1, 2]);
        let mut host = recovering_host(1, &mut peers);

        // Live traffic lands first (organic progress 0 -> 3), then a
        // transfer chunk follows in the same batch (3 -> 10).
        host.handle(Event::Peer(3), &mut peers);
        host.handle(Event::StateResponse(response(1, Some(10), None)), &mut peers);

        host.handle(Event::Timeout, &mut peers);
        assert!(!host.recovering(), "organic progress ends the hunt");
        host.handle(Event::Timeout, &mut peers);
        assert_eq!(peers.state_requests().len(), 1, "an ended hunt never re-requests");
    }

    /// Checkpoint votes must survive a re-request round: peers seal
    /// checkpoints at their own pace, so the f + 1 matching
    /// `(seq, digest)` votes can straddle a round boundary. Clearing
    /// the response set on every re-request (the old behavior) made
    /// agreement unreachable whenever rounds turned over faster than
    /// all peers answered.
    #[test]
    fn late_checkpoint_votes_survive_rerequest_rounds() {
        let mut peers = Peers::new(&[1, 2, 3]);
        let mut host = recovering_host(2, &mut peers);

        // Round 1: peer 1 vouches for checkpoint (50, d) and its chunk
        // nudges progress to 1 — one vote, no restore yet.
        host.handle(Event::StateResponse(response(1, Some(1), Some((50, 7)))), &mut peers);
        assert_eq!(host.progress(), 1, "a single vote must not restore");

        // The productive round re-requests immediately (round 2).
        host.handle(Event::Timeout, &mut peers);
        assert_eq!(peers.state_requests().len(), 2);

        // Peer 2's matching vote arrives after the round turned over:
        // agreement is reached across rounds and the checkpoint lands.
        host.handle(Event::StateResponse(response(2, None, Some((50, 7)))), &mut peers);
        assert_eq!(host.progress(), 50, "cross-round votes must reach agreement");
    }

    /// Gauges publish at batch end, replies route through the client
    /// sink, and deferred state requests are answered after the flush.
    #[test]
    fn finish_batch_publishes_gauges_and_answers_deferred_requests() {
        let mut peers = Peers::new(&[1]);
        let gauges = Gauges::new(NodeTelemetry::new(0));
        let mut host = Host::new(
            ReplicaId(0),
            CatchUp { progress: 0 },
            None,
            gauges.clone(),
            &mut peers,
        );

        host.handle(Event::Peer(42), &mut peers);
        host.handle(
            Event::StateRequest(StateTransferRequest {
                replica: ReplicaId(1),
                have_seq: SeqNum(0),
            }),
            &mut peers,
        );
        assert!(peers.frames.is_empty(), "state requests are deferred to batch end");

        host.finish_batch(Vec::new(), &mut peers, &mut NoClients);
        assert_eq!(gauges.progress.load(Ordering::SeqCst), 42);
        assert_eq!(gauges.telemetry.progress.get(), 42, "telemetry mirrors the batch");
        // CatchUp has no checkpoint and no suffix to offer, so the
        // deferred request is answered with silence — but a protocol
        // with state would have been consulted only now, after the
        // batch's flush point (covered end-to-end by the conformance
        // and chaos suites).
        assert!(peers.frames.is_empty());
    }

    /// A protocol that counts the client requests it is handed and
    /// reports one durable seal once drained — enough to observe the
    /// host's drain gating and epilogue.
    struct Drainable {
        requests_seen: usize,
        pending: bool,
        seals: u64,
        sealed_on_drain: bool,
    }

    impl Protocol for Drainable {
        type Message = u64;

        fn on_message(&mut self, _msg: u64) -> Vec<ProtocolOutput<u64>> {
            Vec::new()
        }

        fn on_client_requests(&mut self, requests: Vec<Request>) -> Vec<ProtocolOutput<u64>> {
            self.requests_seen += requests.len();
            Vec::new()
        }

        fn on_timeout(&mut self) -> Vec<ProtocolOutput<u64>> {
            Vec::new()
        }

        fn has_pending_requests(&self) -> bool {
            self.pending
        }

        fn checkpoint_seal_count(&self) -> u64 {
            self.seals
        }

        fn drain_seal(&mut self) -> Vec<ProtocolOutput<u64>> {
            self.sealed_on_drain = true;
            self.seals += 1;
            Vec::new()
        }
    }

    fn request(n: u64) -> Request {
        Request {
            id: splitbft_types::RequestId {
                client: ClientId(7),
                timestamp: splitbft_types::Timestamp(n),
            },
            op: bytes::Bytes::new(),
            encrypted: false,
            auth: [0; 32],
        }
    }

    /// The drain contract at the hosting layer: requests accepted before
    /// the drain execute, requests arriving after are refused, and the
    /// first idle batch seals + completes the drain (journaled).
    #[test]
    fn drain_refuses_new_requests_then_seals_and_completes() {
        let mut peers = Peers::new(&[1]);
        let gauges = Gauges::new(NodeTelemetry::new(0));
        let protocol =
            Drainable { requests_seen: 0, pending: true, seals: 0, sealed_on_drain: false };
        let mut host = Host::new(ReplicaId(0), protocol, None, gauges.clone(), &mut peers);

        host.handle(Event::Requests(vec![request(1)]), &mut peers);
        assert_eq!(host.protocol.requests_seen, 1, "pre-drain requests are admitted");

        gauges.telemetry.request_drain();
        host.handle(Event::Requests(vec![request(2)]), &mut peers);
        assert_eq!(host.protocol.requests_seen, 1, "post-drain requests are refused");

        // Still pending: the batch must NOT complete the drain yet.
        host.finish_batch(Vec::new(), &mut peers, &mut NoClients);
        assert!(!gauges.telemetry.drained(), "in-flight work holds the drain open");
        assert!(!host.protocol.sealed_on_drain);

        // The in-flight batch finishes; the next drain batch seals.
        host.protocol.pending = false;
        host.handle(Event::Drain, &mut peers);
        host.finish_batch(Vec::new(), &mut peers, &mut NoClients);
        assert!(host.protocol.sealed_on_drain, "drain epilogue forces a seal");
        assert!(gauges.telemetry.drained());
        let events: Vec<StatusEvent> =
            gauges.telemetry.journal.since(0).into_iter().map(|(_, e)| e).collect();
        assert!(events.contains(&StatusEvent::DrainRequested));
        assert!(events.contains(&StatusEvent::DrainCompleted));
        assert!(
            events.contains(&StatusEvent::CheckpointSealed { seq: 0 }),
            "the drain seal is journaled: {events:?}"
        );
    }
}
