//! A deterministic lossy-link model.
//!
//! Every message send consults the model for its *fate*: delivered after
//! some latency, delayed (reordered), or dropped. Fates are drawn from a
//! seeded PRNG, so a simulation run is exactly reproducible from its
//! seed — the property the determinism tests and the benchmark harness
//! rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a (homogeneous) network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Base one-way latency in nanoseconds.
    pub base_latency_ns: u64,
    /// Per-byte serialization delay (bandwidth term), ns/byte.
    pub ns_per_byte: f64,
    /// Uniform jitter added on top, `0..jitter_ns`.
    pub jitter_ns: u64,
    /// Probability a message is dropped entirely.
    pub drop_probability: f64,
    /// Probability a message is held back and delivered with extra delay
    /// (reordering).
    pub reorder_probability: f64,
    /// Extra delay applied to reordered messages.
    pub reorder_extra_ns: u64,
}

impl NetConfig {
    /// The paper's testbed: same-region Azure VMs on 40 Gb Ethernet —
    /// low latency, effectively loss-free.
    pub fn datacenter() -> Self {
        NetConfig {
            base_latency_ns: 60_000,
            ns_per_byte: 0.25,
            jitter_ns: 20_000,
            drop_probability: 0.0,
            reorder_probability: 0.0,
            reorder_extra_ns: 0,
        }
    }

    /// An adversarial network for robustness tests: drops and reorders.
    pub fn lossy(drop_probability: f64, reorder_probability: f64) -> Self {
        NetConfig {
            drop_probability,
            reorder_probability,
            reorder_extra_ns: 2_000_000,
            ..Self::datacenter()
        }
    }

    /// A perfect instantaneous network (unit tests).
    pub fn ideal() -> Self {
        NetConfig {
            base_latency_ns: 0,
            ns_per_byte: 0.0,
            jitter_ns: 0,
            drop_probability: 0.0,
            reorder_probability: 0.0,
            reorder_extra_ns: 0,
        }
    }
}

/// The fate of one message on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Deliver after this many nanoseconds.
    Deliver {
        /// One-way delay.
        delay_ns: u64,
    },
    /// The network ate it.
    Drop,
}

/// A seeded link model shared by all links of a simulated network.
#[derive(Debug)]
pub struct LinkModel {
    config: NetConfig,
    rng: StdRng,
    sent: u64,
    dropped: u64,
}

impl LinkModel {
    /// Creates the model with a deterministic seed.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        LinkModel { config, rng: StdRng::seed_from_u64(seed), sent: 0, dropped: 0 }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Draws the fate of a message of `len` bytes.
    pub fn fate(&mut self, len: usize) -> LinkFate {
        self.sent += 1;
        if self.config.drop_probability > 0.0
            && self.rng.gen_bool(self.config.drop_probability.clamp(0.0, 1.0))
        {
            self.dropped += 1;
            return LinkFate::Drop;
        }
        let mut delay = self.config.base_latency_ns
            + (len as f64 * self.config.ns_per_byte) as u64;
        if self.config.jitter_ns > 0 {
            delay += self.rng.gen_range(0..self.config.jitter_ns);
        }
        if self.config.reorder_probability > 0.0
            && self.rng.gen_bool(self.config.reorder_probability.clamp(0.0, 1.0))
        {
            delay += self.config.reorder_extra_ns;
        }
        LinkFate::Deliver { delay_ns: delay }
    }

    /// `(sent, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_network_delivers_instantly() {
        let mut link = LinkModel::new(NetConfig::ideal(), 1);
        for len in [0usize, 10, 10_000] {
            assert_eq!(link.fate(len), LinkFate::Deliver { delay_ns: 0 });
        }
    }

    #[test]
    fn datacenter_latency_scales_with_size() {
        let cfg = NetConfig { jitter_ns: 0, ..NetConfig::datacenter() };
        let mut link = LinkModel::new(cfg, 1);
        let LinkFate::Deliver { delay_ns: small } = link.fate(10) else { panic!() };
        let LinkFate::Deliver { delay_ns: large } = link.fate(1_000_000) else { panic!() };
        assert!(large > small);
        assert!(small >= cfg.base_latency_ns);
    }

    #[test]
    fn same_seed_same_fates() {
        let cfg = NetConfig::lossy(0.3, 0.2);
        let mut a = LinkModel::new(cfg, 42);
        let mut b = LinkModel::new(cfg, 42);
        for len in 0..200 {
            assert_eq!(a.fate(len), b.fate(len));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = NetConfig::lossy(0.5, 0.0);
        let mut a = LinkModel::new(cfg, 1);
        let mut b = LinkModel::new(cfg, 2);
        let fates_a: Vec<_> = (0..64).map(|_| a.fate(10)).collect();
        let fates_b: Vec<_> = (0..64).map(|_| b.fate(10)).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn drop_rate_approximates_configuration() {
        let mut link = LinkModel::new(NetConfig::lossy(0.25, 0.0), 7);
        for _ in 0..10_000 {
            let _ = link.fate(10);
        }
        let (sent, dropped) = link.stats();
        assert_eq!(sent, 10_000);
        let rate = dropped as f64 / sent as f64;
        assert!((0.2..0.3).contains(&rate), "observed drop rate {rate}");
    }
}
