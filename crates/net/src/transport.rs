//! The hosting contract between protocol state machines and runtimes.
//!
//! Every protocol in this workspace — the PBFT baseline, the SplitBFT
//! compartment broker, and the MinBFT-style hybrid — is a *sans-I/O*
//! state machine: handlers consume one input and return a list of
//! outputs. This module turns that convention into a first-class
//! [`Protocol`] trait so that one runtime implementation can host any of
//! the three, whether in-process ([`crate::runtime::ThreadedCluster`],
//! [`crate::backend::InProcessBackend`]) or across real sockets
//! ([`crate::tcp::TcpNode`], [`crate::evented::EventedNode`]).
//!
//! It also provides the stream-transport plumbing shared by socket
//! runtimes: frame kinds, blocking framed reads/writes over any
//! `Read`/`Write` (length-prefixed, see [`splitbft_types::wire`] for the
//! header layout), and [`PeerOutbox`] — a per-peer outbound queue with
//! automatic reconnection and send-path batching.
//!
//! Two socket stacks share this plumbing and the exact same wire
//! format (see [`crate::backend::TransportKind`]): the *blocking*
//! runtime here and in [`crate::tcp`] uses `std::net` blocking I/O with
//! one OS thread per connection — simple, and for the cluster sizes BFT
//! protocols run at (4–16 replicas) entirely adequate; the *evented*
//! runtime in [`crate::evented`] serves every connection from one
//! readiness loop over nonblocking sockets with bounded per-peer rings
//! and zero-copy frame decoding, trading the thread fleet for a higher
//! saturation knee. The build environment cannot fetch an async reactor
//! (tokio) from crates.io; both stacks stay on `std::net` and keep the
//! TCB free of unsafe executor code.

use splitbft_obs::NodeTelemetry;
use splitbft_types::wire::{
    decode, encode, frame, Decode, Encode, FrameHeader, FRAME_HEADER_LEN,
};
use splitbft_types::{
    ClientId, DurableCheckpoint, DurableEvent, ProtocolError, ReplicaId, Reply, Request, SeqNum,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bound on messages a protocol can put on the wire: canonically
/// encodable, decodable from untrusted bytes, and cheap to fan out.
///
/// Blanket-implemented; never implement it manually.
pub trait WireMessage: Encode + Decode + Clone + fmt::Debug + Send + 'static {}

impl<T: Encode + Decode + Clone + fmt::Debug + Send + 'static> WireMessage for T {}

/// An effect a hosted protocol asks its runtime to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolOutput<M> {
    /// Send `msg` to every *other* replica (the sender has already
    /// processed its own copy internally).
    Broadcast(M),
    /// Send `msg` to a single *other* replica. A self-addressed send is
    /// dropped by every runtime — state machines process their own copy
    /// internally before emitting, as with [`ProtocolOutput::Broadcast`].
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        msg: M,
    },
    /// Deliver an execution result to a client.
    Reply {
        /// Destination client.
        to: ClientId,
        /// The reply (authenticated, possibly encrypted).
        reply: Reply,
    },
}

/// A BFT protocol replica hostable by any runtime in this crate.
///
/// Implemented by [`splitbft-pbft`'s `Replica`], [`splitbft-core`'s
/// `SplitBftReplica`] and [`splitbft-hybrid`'s `HybridReplica`] (in their
/// own crates, since trait and types live on opposite sides of the
/// dependency edge). The contract mirrors the paper's deployment model:
/// one replica process per machine, driven entirely by network messages,
/// client requests, and the view-change timer.
///
/// [`splitbft-pbft`'s `Replica`]: https://docs.rs/splitbft-pbft
/// [`splitbft-core`'s `SplitBftReplica`]: https://docs.rs/splitbft-core
/// [`splitbft-hybrid`'s `HybridReplica`]: https://docs.rs/splitbft-hybrid
pub trait Protocol: Send + 'static {
    /// The replica-to-replica message vocabulary.
    type Message: WireMessage;

    /// Handles one message from a peer replica.
    fn on_message(&mut self, msg: Self::Message) -> Vec<ProtocolOutput<Self::Message>>;

    /// Handles a batch of client requests (delivered to the node the
    /// client believes is primary).
    fn on_client_requests(&mut self, requests: Vec<Request>)
        -> Vec<ProtocolOutput<Self::Message>>;

    /// Handles a view-change timer expiry.
    fn on_timeout(&mut self) -> Vec<ProtocolOutput<Self::Message>>;

    /// A monotone counter of commit/execution progress (e.g. the highest
    /// executed sequence number).
    ///
    /// Together with [`Protocol::has_pending_requests`] this drives the
    /// *request-aware* view-change timer in socket runtimes: a periodic
    /// tick only forwards to [`Protocol::on_timeout`] when a request has
    /// been accepted but no progress was made since the previous tick, so
    /// an idle cluster never churns views while a crashed primary still
    /// fails over. For protocols that keep the defaults (constant `0`
    /// progress, always-pending), the gate degrades to firing on every
    /// *second* tick — the first tick arms, the next fires — so an
    /// un-opted-in protocol still view-changes, at half the configured
    /// rate; protocols that care about the exact period should
    /// implement both probes.
    fn progress(&self) -> u64 {
        0
    }

    /// `true` while at least one client request has been accepted by this
    /// replica but not yet executed. See [`Protocol::progress`].
    fn has_pending_requests(&self) -> bool {
        true
    }

    // --- durability hooks ---------------------------------------------------
    //
    // The durability plane (`splitbft-store` + the state-transfer client
    // in `crate::tcp`) is opt-in: every hook defaults to "no durable
    // state", so protocols that have not wired it keep hosting
    // unchanged. A protocol that opts in implements all five.

    /// Drains the consensus events recorded since the last drain —
    /// accepted proposals, commit points, view entries, trusted-counter
    /// ticks, checkpoint stabilizations (see
    /// [`splitbft_types::durable::DurableEvent`]).
    ///
    /// Durable runtimes call this after *every* handler invocation and
    /// append the events to the write-ahead log — with an fsync —
    /// **before** routing the handler's outputs, so nothing reaches the
    /// network that a crash could un-happen.
    fn drain_durable_events(&mut self) -> Vec<DurableEvent> {
        Vec::new()
    }

    /// Replays one WAL event during crash recovery. Called in log order
    /// on a freshly constructed replica before any networking starts;
    /// implementations must not assume peers are reachable and should
    /// produce no outputs.
    fn replay_durable_event(&mut self, _event: DurableEvent) {}

    /// The replica's durable state at its latest stable checkpoint, or
    /// `None` while still at genesis. Durable runtimes seal this to disk
    /// whenever its sequence number advances, and serve it to lagging
    /// peers over `STATE_TRANSFER`.
    fn durable_checkpoint(&self) -> Option<DurableCheckpoint> {
        None
    }

    /// Restores protocol and application state from a checkpoint
    /// produced by [`Protocol::durable_checkpoint`] — either unsealed
    /// from local storage or agreed on by `f + 1` peers. Implementations
    /// must re-validate the opaque bytes (certificate signatures,
    /// snapshot digests) rather than trust them.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] when the bytes fail validation; the caller then
    /// falls back to other recovery sources instead of aborting.
    fn restore_checkpoint(&mut self, _cp: &DurableCheckpoint) -> Result<(), ProtocolError> {
        Err(ProtocolError::Other("protocol has no durable-state support".into()))
    }

    /// Protocol messages that let a peer whose progress is `have_seq`
    /// catch up above the stable checkpoint through its normal
    /// [`Protocol::on_message`] path (e.g. retained proposals plus their
    /// commit votes). Served verbatim in `STATE_RESPONSE` frames; the
    /// receiver re-verifies them like any network input.
    fn catch_up_messages(&self, _have_seq: SeqNum) -> Vec<Self::Message> {
        Vec::new()
    }

    /// Completes one *drain batch* of handler invocations: runtimes that
    /// process several queued events back to back call this once at the
    /// end of the batch, before routing anything the batch produced.
    ///
    /// This is the group-commit point of the durability plane. A durable
    /// wrapper (`splitbft-store`'s `DurableProtocol` in group-commit
    /// mode) appends WAL records during the handler calls but *withholds
    /// their outputs*; this hook performs the batch's single fsync and
    /// releases everything withheld, so the WAL-before-network invariant
    /// holds with one fsync per batch instead of one per event.
    ///
    /// The default releases nothing (non-durable protocols return their
    /// outputs directly from the handlers). Runtimes must call this
    /// after **every** batch, even a batch of one.
    fn flush_durable(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        Vec::new()
    }

    /// Monotone count of WAL fsyncs this protocol has performed —
    /// `0` forever for non-durable protocols. Benchmarks read it (via
    /// the runtime's gauge) to quantify what group-commit saves.
    fn durable_fsyncs(&self) -> u64 {
        0
    }

    // --- sharding hooks -----------------------------------------------------
    //
    // A sharded combinator hosts several independent consensus groups
    // behind one `Protocol` facade; these probes let runtimes expose
    // per-group gauges without knowing about sharding. Unsharded
    // protocols keep the defaults: one group, the scalar gauges.

    /// Per-shard breakdown of [`Protocol::progress`]. The default is the
    /// single-group view; a sharded combinator returns one entry per
    /// inner instance.
    fn shard_progress(&self) -> Vec<u64> {
        vec![self.progress()]
    }

    /// Per-shard breakdown of [`Protocol::durable_fsyncs`]. The default
    /// is the single-group view.
    fn shard_fsyncs(&self) -> Vec<u64> {
        vec![self.durable_fsyncs()]
    }

    // --- observability hooks ------------------------------------------------
    //
    // Read-only probes feeding the telemetry plane (`splitbft-obs`).
    // All default to "nothing to report" so existing protocols and the
    // test doubles in this crate keep compiling unchanged; hosts poll
    // them once per drain batch, never on a per-message hot path.

    /// The protocol's current view number (the first compartment's view
    /// for multi-compartment protocols). Protocols without a view notion
    /// keep the default `0`.
    fn current_view(&self) -> u64 {
        0
    }

    /// Number of client requests accepted but not yet executed. The
    /// default derives a 0/1 signal from
    /// [`Protocol::has_pending_requests`]; protocols that track an exact
    /// count should override.
    fn pending_request_count(&self) -> u64 {
        u64::from(self.has_pending_requests())
    }

    /// Current write-ahead-log length in bytes — `0` for non-durable
    /// protocols.
    fn wal_bytes(&self) -> u64 {
        0
    }

    /// Monotone count of durable checkpoints sealed to disk — `0` for
    /// non-durable protocols.
    fn checkpoint_seal_count(&self) -> u64 {
        0
    }

    /// Per-shard breakdown of [`Protocol::current_view`]. The default is
    /// the single-group view; a sharded combinator returns one entry per
    /// inner instance.
    fn shard_views(&self) -> Vec<u64> {
        vec![self.current_view()]
    }

    /// Graceful-drain epilogue: force a checkpoint seal and WAL flush so
    /// the node's durable state is complete before it exits. Called once
    /// by the host after a drain request once no requests are pending;
    /// any outputs returned are routed like a normal batch. Non-durable
    /// protocols keep the default no-op.
    fn drain_seal(&mut self) -> Vec<ProtocolOutput<Self::Message>> {
        Vec::new()
    }
}

/// Frame discriminators used by the socket transport (the `kind` byte of
/// [`FrameHeader`]).
pub mod frame_kind {
    /// First frame on a replica→replica connection; payload: `ReplicaId`.
    pub const PEER_HELLO: u8 = 1;
    /// First frame on a client→replica connection; payload: `ClientId`.
    pub const CLIENT_HELLO: u8 = 2;
    /// A protocol message; payload: one `Protocol::Message`.
    pub const PROTOCOL: u8 = 3;
    /// Client requests; payload: `Vec<Request>`.
    pub const REQUESTS: u8 = 4;
    /// A reply to a client; payload: `Reply`.
    pub const REPLY: u8 = 5;
    /// A recovering replica asks a peer for state; payload:
    /// `StateTransferRequest`.
    pub const STATE_REQUEST: u8 = 6;
    /// A peer's checkpoint + log suffix; payload:
    /// `StateTransferResponse`.
    pub const STATE_RESPONSE: u8 = 7;
    /// A chaos-plane control command mutating the node's fault plan;
    /// payload: `FaultCommand`. Sent on client connections by the chaos
    /// orchestrator (see [`crate::fault::send_fault_command`]); honored
    /// only by nodes launched with fault injection enabled
    /// (`TcpNodeConfig::fault_injection`) — everyone else closes the
    /// connection.
    pub const FAULT_CONTROL: u8 = 8;
    /// An observability query or admin verb on a client connection;
    /// payload: `StatusRequest`, answered with one `StatusResponse`
    /// frame of the same kind (see [`crate::status`]). Read-only verbs
    /// (snapshot, event-journal suffix) are always served; admin verbs
    /// (drain) are honored only by nodes launched with
    /// `TcpNodeConfig::status_admin` — everyone else answers
    /// `StatusResponse::Refused` and closes the connection, mirroring
    /// the `FAULT_CONTROL` gate.
    pub const STATUS: u8 = 9;
}

fn wire_to_io(e: splitbft_types::wire::WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Writes one frame (`kind` + encoded `payload`) to a stream.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame(kind, payload))
}

/// Writes one frame containing a single encoded value.
pub fn write_value<W: Write, T: Encode>(w: &mut W, kind: u8, value: &T) -> io::Result<()> {
    write_frame(w, kind, &encode(value))
}

/// Blocking-reads one frame, validating the header invariants
/// (magic, version, length bound). Returns the frame kind and payload.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut header_bytes = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header_bytes)?;
    let header = FrameHeader::parse(&header_bytes).map_err(wire_to_io)?;
    let mut payload = vec![0u8; header.len as usize];
    r.read_exact(&mut payload)?;
    Ok((header.kind, payload))
}

/// Reads one frame and decodes its payload, checking the expected kind.
pub fn read_value<R: Read, T: Decode>(r: &mut R, expected_kind: u8) -> io::Result<T> {
    let (kind, payload) = read_frame(r)?;
    if kind != expected_kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected frame kind {expected_kind}, got {kind}"),
        ));
    }
    decode(&payload).map_err(wire_to_io)
}

/// Send-path batching limits for [`PeerOutbox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once this many frames are coalesced into one write.
    pub max_frames: usize,
    /// Flush once the coalesced write reaches this many bytes.
    pub max_bytes: usize,
    /// How long a non-full batch may wait for more frames before it is
    /// flushed anyway. Zero (the default) flushes as soon as the queue
    /// runs dry — minimum latency; raising it trades latency for larger
    /// writes, which benchmark sweeps can measure.
    pub linger: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        // One syscall per ~64 messages or ~256 KiB, whichever first: large
        // enough to amortize syscalls under load, small enough to keep
        // per-message latency negligible on a LAN.
        BatchPolicy { max_frames: 64, max_bytes: 256 * 1024, linger: Duration::ZERO }
    }
}

impl BatchPolicy {
    /// Builder for the linger (flush-interval) knob.
    #[must_use]
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }
}

/// How long a disconnected outbox waits between reconnect attempts,
/// growing linearly from `RECONNECT_MIN` to `RECONNECT_MAX`.
const RECONNECT_MIN: Duration = Duration::from_millis(10);
const RECONNECT_MAX: Duration = Duration::from_millis(500);

/// A reconnecting, batching outbound queue toward one peer replica.
///
/// Messages are enqueued as pre-framed byte buffers (shared via `Arc`, so
/// a broadcast encodes once and clones nine pointers, not nine payloads).
/// A dedicated worker thread drains the queue, coalescing every message
/// available at flush time into a single `write_all` up to the
/// [`BatchPolicy`] limits — batching on the send path.
///
/// The worker (re)connects lazily and retries with backoff, so replicas
/// of a cluster can start in any order. Messages that cannot be written
/// after one reconnect cycle are dropped — BFT protocols tolerate message
/// loss by design (retransmission is driven by client timeouts and view
/// changes, not by the transport).
///
/// Every enqueue first consults the link's [`FaultPlan`]
/// (see [`PeerOutbox::spawn_with_faults`]): this is the chaos plane's
/// choke point, covering protocol traffic and state transfer alike
/// because both go through the same outboxes.
///
/// [`FaultPlan`]: crate::fault::FaultPlan
#[derive(Debug)]
pub struct PeerOutbox {
    local: ReplicaId,
    peer: ReplicaId,
    faults: Arc<crate::fault::FaultPlan>,
    tx: Option<Sender<Arc<Vec<u8>>>>,
    closed: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
    /// The delay lane for [`FaultDecision::DeliverAfter`] frames: one
    /// timer thread per outbox (spawned lazily on the first delayed
    /// frame) holding any number of frames until their deadlines, so a
    /// busy link under a reorder/delay rule never spawns per-frame
    /// threads.
    ///
    /// [`FaultDecision::DeliverAfter`]: crate::fault::FaultDecision::DeliverAfter
    delay: Mutex<Option<(Sender<(Instant, Arc<Vec<u8>>)>, JoinHandle<()>)>>,
}

impl PeerOutbox {
    /// Spawns the worker for the link `local` → `peer` at `addr`, with
    /// no fault injection (an inert plan).
    pub fn spawn(local: ReplicaId, peer: ReplicaId, addr: SocketAddr, policy: BatchPolicy) -> Self {
        Self::spawn_with_faults(local, peer, addr, policy, crate::fault::FaultPlan::shared(0))
    }

    /// Spawns the worker for the link `local` → `peer` at `addr`,
    /// consulting `faults` on every enqueue. The plan is shared across
    /// all of a node's outboxes so one control command steers the whole
    /// node.
    pub fn spawn_with_faults(
        local: ReplicaId,
        peer: ReplicaId,
        addr: SocketAddr,
        policy: BatchPolicy,
        faults: Arc<crate::fault::FaultPlan>,
    ) -> Self {
        Self::spawn_observed(local, peer, addr, policy, faults, None)
    }

    /// Like [`PeerOutbox::spawn_with_faults`], additionally feeding the
    /// node's telemetry: bytes written to this link count into
    /// `bytes_out`, and every successful re-establishment of a
    /// previously-connected link counts into `reconnects` (the first
    /// connection of a link's life is not a *re*-connect).
    pub fn spawn_observed(
        local: ReplicaId,
        peer: ReplicaId,
        addr: SocketAddr,
        policy: BatchPolicy,
        faults: Arc<crate::fault::FaultPlan>,
        telemetry: Option<Arc<NodeTelemetry>>,
    ) -> Self {
        let (tx, rx) = channel::<Arc<Vec<u8>>>();
        let closed = Arc::new(AtomicBool::new(false));
        let closed_worker = Arc::clone(&closed);
        let worker = std::thread::Builder::new()
            .name(format!("outbox-{}-to-{}", local.0, peer.0))
            .spawn(move || outbox_worker(local, addr, rx, closed_worker, policy, telemetry))
            .expect("spawn outbox worker");
        PeerOutbox {
            local,
            peer,
            faults,
            tx: Some(tx),
            closed,
            worker: Some(worker),
            delay: Mutex::new(None),
        }
    }

    /// Enqueues one pre-framed message for delivery, subject to the
    /// link's fault plan.
    pub fn enqueue(&self, framed: Arc<Vec<u8>>) {
        let Some(tx) = &self.tx else { return };
        match self.faults.decide(self.local, self.peer) {
            crate::fault::FaultDecision::Deliver => {
                let _ = tx.send(framed);
            }
            crate::fault::FaultDecision::Drop => {}
            crate::fault::FaultDecision::Duplicate => {
                let _ = tx.send(Arc::clone(&framed));
                let _ = tx.send(framed);
            }
            crate::fault::FaultDecision::DeliverAfter(delay) => {
                // Hold the frame back on the outbox's delay lane;
                // frames enqueued in the meantime overtake it,
                // producing real reordering on the wire.
                let deadline = Instant::now() + delay;
                let mut lane = self.delay.lock().expect("delay lane");
                let (delay_tx, _) = lane.get_or_insert_with(|| {
                    let (delay_tx, delay_rx) = channel::<(Instant, Arc<Vec<u8>>)>();
                    let out = tx.clone();
                    let worker = std::thread::Builder::new()
                        .name(format!("outbox-delay-{}-to-{}", self.local.0, self.peer.0))
                        .spawn(move || delay_worker(delay_rx, out))
                        .expect("spawn delay worker");
                    (delay_tx, worker)
                });
                let _ = delay_tx.send((deadline, framed));
            }
        }
    }

    /// Closes the queue and joins the worker. Unsent messages are
    /// dropped.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.closed.store(true, Ordering::SeqCst);
        // The delay lane first: its worker holds a clone of the main
        // sender, so the main worker cannot see disconnection until the
        // lane is gone. Frames still held at close are dropped, like
        // any other unsent message.
        if let Some((delay_tx, worker)) = self.delay.lock().expect("delay lane").take() {
            drop(delay_tx);
            let _ = worker.join();
        }
        self.tx.take(); // disconnect the channel so a blocked recv returns
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for PeerOutbox {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The delay lane of one [`PeerOutbox`]: receives `(deadline, frame)`
/// pairs and releases each frame into the main queue once its deadline
/// passes. A single thread serves any number of concurrently-held
/// frames; it exits when the outbox closes (sender dropped), dropping
/// whatever it still holds.
fn delay_worker(rx: Receiver<(Instant, Arc<Vec<u8>>)>, out: Sender<Arc<Vec<u8>>>) {
    // Held frames, in arrival order (preserved among equal deadlines).
    // Bounded by frames-in-flight on one link, i.e. small.
    let mut held: Vec<(Instant, Arc<Vec<u8>>)> = Vec::new();
    loop {
        let now = Instant::now();
        let mut index = 0;
        while index < held.len() {
            if held[index].0 <= now {
                let (_, frame) = held.remove(index);
                let _ = out.send(frame);
            } else {
                index += 1;
            }
        }
        let next_deadline = held.iter().map(|(at, _)| *at).min();
        let incoming = match next_deadline {
            None => match rx.recv() {
                Ok(pair) => Some(pair),
                Err(_) => return, // outbox closed, nothing held
            },
            Some(at) => {
                match rx.recv_timeout(at.saturating_duration_since(Instant::now())) {
                    Ok(pair) => Some(pair),
                    Err(RecvTimeoutError::Timeout) => None, // release on next pass
                    Err(RecvTimeoutError::Disconnected) => return, // drop held frames
                }
            }
        };
        held.extend(incoming);
    }
}

fn outbox_worker(
    local: ReplicaId,
    addr: SocketAddr,
    rx: Receiver<Arc<Vec<u8>>>,
    closed: Arc<AtomicBool>,
    policy: BatchPolicy,
    telemetry: Option<Arc<NodeTelemetry>>,
) {
    let mut link = Link { conn: None, ever_connected: false, telemetry };
    'main: loop {
        // Block for the first message of the next batch.
        let first = match rx.recv() {
            Ok(m) => m,
            Err(_) => break, // outbox closed
        };
        // Coalesce whatever else is already queued, up to the policy. A
        // non-zero linger additionally waits for stragglers until the
        // flush deadline, trading per-message latency for larger writes.
        let mut batch: Vec<u8> = Vec::with_capacity(first.len());
        batch.extend_from_slice(&first);
        let mut frames = 1;
        let flush_at = std::time::Instant::now() + policy.linger;
        while frames < policy.max_frames && batch.len() < policy.max_bytes {
            let next = match rx.try_recv() {
                Ok(m) => Ok(m),
                Err(TryRecvError::Empty) => {
                    let wait = flush_at.saturating_duration_since(std::time::Instant::now());
                    if wait.is_zero() {
                        break;
                    }
                    match rx.recv_timeout(wait) {
                        Ok(m) => Ok(m),
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => break,
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(()),
                    }
                }
                Err(TryRecvError::Disconnected) => Err(()),
            };
            match next {
                Ok(m) => {
                    batch.extend_from_slice(&m);
                    frames += 1;
                }
                Err(()) => {
                    // Flush this final batch, then exit.
                    flush(&mut link, local, addr, &batch, &closed);
                    break 'main;
                }
            }
        }
        flush(&mut link, local, addr, &batch, &closed);
        if closed.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// One outbox worker's connection state plus the telemetry it feeds.
struct Link {
    conn: Option<TcpStream>,
    /// Whether this link ever connected — distinguishes the first
    /// connection of its life from a *re*-connect for the counter.
    ever_connected: bool,
    telemetry: Option<Arc<NodeTelemetry>>,
}

/// Writes `batch` to the peer, reconnecting if needed. One reconnect
/// cycle per batch: a batch that fails on a fresh connection is dropped.
fn flush(
    link: &mut Link,
    local: ReplicaId,
    addr: SocketAddr,
    batch: &[u8],
    closed: &AtomicBool,
) {
    for _attempt in 0..2 {
        if link.conn.is_none() {
            link.conn = connect_with_hello(local, addr, closed);
            if link.conn.is_none() {
                return; // closed while reconnecting
            }
            if let Some(telemetry) = &link.telemetry {
                if link.ever_connected {
                    telemetry.reconnects.add(1);
                }
            }
            link.ever_connected = true;
        }
        let stream = link.conn.as_mut().expect("connection established above");
        if stream.write_all(batch).and_then(|()| stream.flush()).is_ok() {
            if let Some(telemetry) = &link.telemetry {
                telemetry.bytes_out.add(batch.len() as u64);
            }
            return;
        }
        link.conn = None; // stale connection: reconnect and retry once
    }
}

/// Connects to `addr` and performs the PEER_HELLO handshake, retrying
/// with backoff until it succeeds or the outbox is closed.
fn connect_with_hello(
    local: ReplicaId,
    addr: SocketAddr,
    closed: &AtomicBool,
) -> Option<TcpStream> {
    let mut backoff = RECONNECT_MIN;
    loop {
        if closed.load(Ordering::SeqCst) {
            return None;
        }
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                let _ = stream.set_nodelay(true);
                if write_value(&mut stream, frame_kind::PEER_HELLO, &local).is_ok() {
                    return Some(stream);
                }
            }
            Err(_) => {}
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(RECONNECT_MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frame_roundtrip_over_stream() {
        let mut buf: Vec<u8> = Vec::new();
        write_value(&mut buf, frame_kind::PROTOCOL, &42u64).unwrap();
        write_frame(&mut buf, frame_kind::REQUESTS, b"raw").unwrap();

        let mut cursor = io::Cursor::new(buf);
        let v: u64 = read_value(&mut cursor, frame_kind::PROTOCOL).unwrap();
        assert_eq!(v, 42);
        let (kind, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, frame_kind::REQUESTS);
        assert_eq!(payload, b"raw");
    }

    #[test]
    fn read_value_rejects_wrong_kind() {
        let mut buf: Vec<u8> = Vec::new();
        write_value(&mut buf, frame_kind::REPLY, &1u32).unwrap();
        let err = read_value::<_, u32>(&mut io::Cursor::new(buf), frame_kind::PROTOCOL)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn outbox_connects_batches_and_delivers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let outbox = PeerOutbox::spawn(ReplicaId(0), ReplicaId(1), addr, BatchPolicy::default());

        for i in 0..10u64 {
            outbox.enqueue(Arc::new(frame(frame_kind::PROTOCOL, &encode(&i))));
        }

        let (mut conn, _) = listener.accept().unwrap();
        let hello: ReplicaId = read_value(&mut conn, frame_kind::PEER_HELLO).unwrap();
        assert_eq!(hello, ReplicaId(0));
        for i in 0..10u64 {
            let v: u64 = read_value(&mut conn, frame_kind::PROTOCOL).unwrap();
            assert_eq!(v, i);
        }
        outbox.close();
    }

    #[test]
    fn delay_lane_holds_frames_and_undelayed_frames_overtake() {
        use splitbft_types::fault::{FaultCommand, LinkRule};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let plan = crate::fault::FaultPlan::shared(0);
        plan.apply(FaultCommand::SetRule(LinkRule {
            from: ReplicaId(0),
            to: ReplicaId(1),
            drop_percent: 0,
            duplicate_percent: 0,
            reorder_percent: 0,
            delay_ms: 300,
        }));
        let outbox = PeerOutbox::spawn_with_faults(
            ReplicaId(0),
            ReplicaId(1),
            addr,
            BatchPolicy::default(),
            Arc::clone(&plan),
        );
        // A burst of pure-delay frames all ride the one delay lane (the
        // per-frame-thread regression this guards against) and still
        // arrive, in order.
        for i in 0..20u64 {
            outbox.enqueue(Arc::new(frame(frame_kind::PROTOCOL, &encode(&i))));
        }
        // An undelayed frame enqueued while they are held overtakes them.
        plan.apply(FaultCommand::ClearRules);
        outbox.enqueue(Arc::new(frame(frame_kind::PROTOCOL, &encode(&99u64))));

        let (mut conn, _) = listener.accept().unwrap();
        let _: ReplicaId = read_value(&mut conn, frame_kind::PEER_HELLO).unwrap();
        let got: Vec<u64> = (0..21)
            .map(|_| read_value::<_, u64>(&mut conn, frame_kind::PROTOCOL).unwrap())
            .collect();
        assert_eq!(got[0], 99, "the undelayed frame must overtake the held burst");
        assert_eq!(got[1..], (0..20).collect::<Vec<u64>>()[..], "held frames release in order");
        outbox.close();
    }

    #[test]
    fn outbox_survives_peer_restart() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let outbox = PeerOutbox::spawn(ReplicaId(2), ReplicaId(3), addr, BatchPolicy::default());

        outbox.enqueue(Arc::new(frame(frame_kind::PROTOCOL, &encode(&1u64))));
        {
            let (mut conn, _) = listener.accept().unwrap();
            let _: ReplicaId = read_value(&mut conn, frame_kind::PEER_HELLO).unwrap();
            let v: u64 = read_value(&mut conn, frame_kind::PROTOCOL).unwrap();
            assert_eq!(v, 1);
            // Connection dropped here: the peer "restarts".
        }

        // The next message forces a write error, then a reconnect.
        // The first message after a restart may be lost (at-most-once
        // transport); keep sending until the new connection delivers.
        let delivered = std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let (mut conn, _) = listener.accept().unwrap();
                let _: ReplicaId = read_value(&mut conn, frame_kind::PEER_HELLO).unwrap();
                read_value::<_, u64>(&mut conn, frame_kind::PROTOCOL).unwrap()
            });
            for i in 2..100u64 {
                outbox.enqueue(Arc::new(frame(frame_kind::PROTOCOL, &encode(&i))));
                std::thread::sleep(Duration::from_millis(5));
                if handle.is_finished() {
                    break;
                }
            }
            handle.join().unwrap()
        });
        assert!(delivered >= 2, "got message {delivered} after reconnect");
        outbox.close();
    }
}
