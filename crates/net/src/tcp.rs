//! A deployable TCP runtime hosting one [`Protocol`] replica per process.
//!
//! This is the socket counterpart of [`crate::runtime::ThreadedCluster`]:
//! instead of crossbeam-style in-process channels, replicas exchange
//! length-prefixed frames (see [`splitbft_types::wire`]) over real TCP
//! connections, mirroring the paper's deployment of one SplitBFT process
//! per VM.
//!
//! # Topology
//!
//! Every replica listens on one address. For each *other* replica it
//! keeps a [`PeerOutbox`] — an outbound connection with reconnection and
//! send-path batching — so a cluster of `n` nodes forms a full mesh of
//! `n·(n−1)` simplex links. Clients connect to any subset of replicas,
//! announce a [`ClientId`], push request batches, and receive replies on
//! the same connection.
//!
//! # Threads
//!
//! One node runs: an accept loop, one reader thread per inbound
//! connection, one outbox worker per peer, an optional timer, and the
//! *core* thread that owns the [`Protocol`] state machine. Only the core
//! thread touches protocol state, so hosted replicas need no internal
//! locking.

use crate::fault::FaultPlan;
use crate::host::{ClientSink, Event, Gauges, Host, PeerSink, MAX_DRAIN_BATCH};
use crate::transport::{
    frame_kind, read_frame, read_value, write_value, BatchPolicy, PeerOutbox, Protocol,
};
use splitbft_obs::NodeTelemetry;
use splitbft_types::wire::{decode, encode, frame, FRAME_HEADER_LEN};
use splitbft_types::{
    ClientId, FaultCommand, ReplicaId, Reply, Request, StateTransferRequest,
    StateTransferResponse, StatusEvent, StatusRequest, StatusResponse, StatusVerb,
};

pub use crate::host::RecoveryPolicy;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, Sender, SyncSender, TryRecvError, TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bound on undelivered replies queued per client connection. A client
/// that stops draining replies loses the overflow (at-most-once reply
/// delivery, same stance as the peer links) instead of stalling the
/// node.
const CLIENT_REPLY_QUEUE: usize = 1024;

/// One frame queued toward a connected client's writer thread: either a
/// protocol [`Reply`] (framed by the writer) or a pre-framed raw buffer
/// (`STATUS` responses, built on the reader thread). One queue per
/// connection keeps the single-writer invariant: only the writer thread
/// ever writes the socket, so frames never interleave.
#[derive(Debug)]
enum ClientFrame {
    Reply(Reply),
    Raw(Arc<Vec<u8>>),
}

/// A connected client's reply lane. The generation token distinguishes
/// a stale connection's teardown from a reconnected client's fresh
/// registration under the same [`ClientId`].
#[derive(Debug)]
struct ClientEntry {
    generation: u64,
    replies: SyncSender<ClientFrame>,
}

type ClientRegistry = Arc<Mutex<HashMap<ClientId, ClientEntry>>>;

/// Live inbound connections keyed by connection generation; entries
/// remove themselves when their reader exits, so the registry tracks
/// only live sockets.
type InboundRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Address book entry: where a replica listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerAddr {
    /// The replica.
    pub id: ReplicaId,
    /// Its listen address.
    pub addr: SocketAddr,
}

/// Configuration for one [`TcpNode`].
#[derive(Debug, Clone)]
pub struct TcpNodeConfig {
    /// This replica's id.
    pub id: ReplicaId,
    /// The local listen address (use port 0 to let the OS pick).
    pub listen: SocketAddr,
    /// The full cluster address book (entries for `id` itself are
    /// ignored).
    pub peers: Vec<PeerAddr>,
    /// Send-path batching limits.
    pub batch: BatchPolicy,
    /// If set, fire the protocol's view-change timer at this period.
    /// `None` (the default) leaves timeouts to explicit triggers, which
    /// is right for tests and demos that never need a view change.
    pub timeout_every: Option<Duration>,
    /// If set, run the state-transfer client (see [`RecoveryPolicy`]).
    /// Peer `STATE_REQUEST`s are answered regardless, so a cluster can
    /// mix recovering and never-recovering nodes.
    pub recovery: Option<RecoveryPolicy>,
    /// Group-commit linger of the core loop. `Duration::ZERO` (the
    /// default) processes one event per drain batch — one
    /// [`Protocol::flush_durable`] call each, so a durable protocol
    /// fsyncs per event, the pre-group-commit behavior. A non-zero
    /// linger lets the core loop coalesce every queued event plus up to
    /// that much waiting time into one batch sharing a single fsync.
    pub group_commit: Duration,
    /// The node's fault plan, consulted by every peer outbox. Defaults
    /// to an inert plan; chaos harnesses share one plan across
    /// in-process nodes or seed it per node for determinism.
    pub faults: Arc<FaultPlan>,
    /// Honor inbound `FAULT_CONTROL` frames (chaos-plane steering of
    /// the fault plan). **Off by default**: the control frame is
    /// unauthenticated, so a production node must never let an
    /// arbitrary connecting client install drop rules or partitions.
    /// Only chaos/bench harnesses opt in; with the flag off, a
    /// connection sending `FAULT_CONTROL` is closed as protocol
    /// garbage and the plan stays untouched.
    pub fault_injection: bool,
    /// Honor `STATUS` **admin** verbs (graceful drain). **Off by
    /// default** for the same reason as `fault_injection`: the frame is
    /// unauthenticated, and an arbitrary connecting client must not be
    /// able to drain a production node. Read-only `STATUS` verbs
    /// (snapshot, event journal) are always served; with the flag off,
    /// an admin verb is answered with `StatusResponse::Refused` and the
    /// connection is closed.
    pub status_admin: bool,
}

impl TcpNodeConfig {
    /// A config with default batching, no timer, no state-transfer
    /// client, and no fault injection.
    pub fn new(id: ReplicaId, listen: SocketAddr, peers: Vec<PeerAddr>) -> Self {
        TcpNodeConfig {
            id,
            listen,
            peers,
            batch: BatchPolicy::default(),
            timeout_every: None,
            recovery: None,
            group_commit: Duration::ZERO,
            faults: FaultPlan::shared(u64::from(id.0)),
            fault_injection: false,
            status_admin: false,
        }
    }
}

/// A bound-but-not-yet-started node: the listener exists (so its
/// ephemeral port is known), but no threads run and no peers are
/// contacted.
///
/// Splitting bind from start lets a test or launcher bring up a whole
/// cluster on OS-assigned ports: bind every node first, collect the
/// resulting address book, then start each node with the complete book.
#[derive(Debug)]
pub struct BoundTcpNode {
    id: ReplicaId,
    listener: TcpListener,
}

impl BoundTcpNode {
    /// The address the listener actually bound (resolved port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// This node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Starts the node's threads around `protocol`. `config.listen` is
    /// ignored (the listener is already bound).
    pub fn start<P: Protocol>(self, config: TcpNodeConfig, protocol: P) -> io::Result<TcpNode> {
        TcpNode::start_bound(self.listener, config, protocol)
    }
}

/// A running replica process serving a [`Protocol`] over TCP.
pub struct TcpNode {
    id: ReplicaId,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    send_shutdown_event: Box<dyn Fn() + Send>,
    send_drain_event: Box<dyn Fn() + Send>,
    timer_stop: Option<Sender<()>>,
    threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    inbound: InboundRegistry,
    /// Mirror of the hosted protocol's `progress()`, updated by the
    /// core loop after every event. Lets orchestrators (benches, tests)
    /// watch a replica catch up without touching protocol state.
    progress: Arc<AtomicU64>,
    /// Mirror of the hosted protocol's `durable_fsyncs()` — stays `0`
    /// for non-durable protocols. Benches read it to quantify what WAL
    /// group-commit saves.
    fsyncs: Arc<AtomicU64>,
    /// Per-shard mirror of `(shard_progress(), shard_fsyncs())` —
    /// single-element vectors for unsharded protocols. Behind one lock
    /// because readers are occasional orchestrators, not hot paths.
    shard_gauges: Arc<Mutex<(Vec<u64>, Vec<u64>)>>,
    /// The node's telemetry bundle: registry, event journal, lifecycle
    /// flags. Shared with whatever serves `/metrics`.
    telemetry: Arc<NodeTelemetry>,
}

impl std::fmt::Debug for TcpNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpNode")
            .field("id", &self.id)
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl TcpNode {
    /// Reserves a listener for replica `id` without starting anything.
    pub fn bind(id: ReplicaId, listen: SocketAddr) -> io::Result<BoundTcpNode> {
        Ok(BoundTcpNode { id, listener: TcpListener::bind(listen)? })
    }

    /// Binds the listener and spawns the node's threads around
    /// `protocol`. Returns once the node is accepting connections.
    pub fn spawn<P: Protocol>(config: TcpNodeConfig, protocol: P) -> io::Result<Self> {
        let listener = TcpListener::bind(config.listen)?;
        Self::start_bound(listener, config, protocol)
    }

    fn start_bound<P: Protocol>(
        listener: TcpListener,
        config: TcpNodeConfig,
        protocol: P,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let inbound: InboundRegistry = Arc::new(Mutex::new(HashMap::new()));
        let clients: ClientRegistry = Arc::new(Mutex::new(HashMap::new()));
        let (events_tx, events_rx) = channel::<Event<P::Message>>();
        let mut threads = Vec::new();
        let telemetry = NodeTelemetry::new(config.id.0);

        // Outboxes toward every other replica, all consulting the node's
        // shared fault plan on their send paths and feeding the node's
        // bytes-out / reconnect counters.
        let mut outboxes: HashMap<ReplicaId, PeerOutbox> = HashMap::new();
        for peer in &config.peers {
            if peer.id != config.id {
                outboxes.insert(
                    peer.id,
                    PeerOutbox::spawn_observed(
                        config.id,
                        peer.id,
                        peer.addr,
                        config.batch,
                        Arc::clone(&config.faults),
                        Some(Arc::clone(&telemetry)),
                    ),
                );
            }
        }

        // Accept loop.
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let shutdown = Arc::clone(&shutdown);
            let inbound = Arc::clone(&inbound);
            let clients = Arc::clone(&clients);
            let conn_threads = Arc::clone(&conn_threads);
            let events_tx = events_tx.clone();
            let faults = Arc::clone(&config.faults);
            let fault_injection = config.fault_injection;
            let status_admin = config.status_admin;
            let telemetry = Arc::clone(&telemetry);
            let id = config.id;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("node-{}-accept", id.0))
                    .spawn(move || {
                        accept_loop::<P>(
                            listener,
                            shutdown,
                            inbound,
                            clients,
                            conn_threads,
                            events_tx,
                            faults,
                            fault_injection,
                            status_admin,
                            telemetry,
                        )
                    })
                    .expect("spawn accept loop"),
            );
        }

        // Optional view-change timer. It waits on a stop channel rather
        // than sleeping, so shutdown interrupts it mid-period.
        let mut timer_stop = None;
        if let Some(period) = config.timeout_every {
            let (stop_tx, stop_rx) = channel::<()>();
            timer_stop = Some(stop_tx);
            let events_tx = events_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("node-{}-timer", config.id.0))
                    .spawn(move || loop {
                        match stop_rx.recv_timeout(period) {
                            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                                if events_tx.send(Event::Timeout).is_err() {
                                    break;
                                }
                            }
                            _ => break, // stop signal or node dropped
                        }
                    })
                    .expect("spawn timer"),
            );
        }

        // Core loop: the only thread touching protocol state.
        let gauges = Gauges::new(Arc::clone(&telemetry));
        let progress = Arc::clone(&gauges.progress);
        let fsyncs = Arc::clone(&gauges.fsyncs);
        let shard_gauges = Arc::clone(&gauges.shards);
        {
            let clients = Arc::clone(&clients);
            let id = config.id;
            let recovery = config.recovery;
            let group_commit = config.group_commit;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("node-{}-core", id.0))
                    .spawn(move || {
                        core_loop(
                            id,
                            protocol,
                            events_rx,
                            outboxes,
                            clients,
                            recovery,
                            group_commit,
                            gauges,
                        )
                    })
                    .expect("spawn core loop"),
            );
        }

        let drain_events_tx = events_tx.clone();
        Ok(TcpNode {
            id: config.id,
            local_addr,
            shutdown,
            // Type-erases Sender<Event<P::Message>> so TcpNode itself
            // stays non-generic over the hosted protocol.
            send_shutdown_event: Box::new(move || {
                let _ = events_tx.send(Event::Shutdown);
            }),
            send_drain_event: Box::new(move || {
                let _ = drain_events_tx.send(Event::Drain);
            }),
            timer_stop,
            threads,
            conn_threads,
            inbound,
            progress,
            fsyncs,
            shard_gauges,
            telemetry,
        })
    }

    /// This node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The bound listen address (useful with port 0 configs).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The hosted protocol's latest `progress()` value (e.g. highest
    /// executed sequence number), as observed after the most recent
    /// event. Safe to poll from any thread.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::SeqCst)
    }

    /// The hosted protocol's latest `durable_fsyncs()` value (WAL
    /// fsyncs performed so far; `0` for non-durable protocols). Safe to
    /// poll from any thread.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::SeqCst)
    }

    /// Per-shard breakdown of [`TcpNode::progress`] — one entry per
    /// consensus group the hosted protocol runs (a single entry for
    /// unsharded protocols; empty until the first event is processed).
    pub fn shard_progress(&self) -> Vec<u64> {
        self.shard_gauges.lock().expect("shard gauges").0.clone()
    }

    /// Per-shard breakdown of [`TcpNode::fsyncs`] (see
    /// [`TcpNode::shard_progress`] for the shape).
    pub fn shard_fsyncs(&self) -> Vec<u64> {
        self.shard_gauges.lock().expect("shard gauges").1.clone()
    }

    /// The node's telemetry bundle (metrics registry, event journal,
    /// lifecycle flags). Hand it to
    /// [`splitbft_obs::MetricsServer::serve`] to expose `/metrics`.
    pub fn telemetry(&self) -> Arc<NodeTelemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Requests a graceful drain (the SIGTERM path; the `STATUS` admin
    /// verb does the same over the wire): the node stops admitting
    /// client requests, finishes in-flight batches, seals a checkpoint,
    /// and flushes the WAL. Poll `telemetry().drained()` for
    /// completion, then call [`TcpNode::shutdown`] and exit 0.
    pub fn request_drain(&self) {
        self.telemetry.request_drain();
        (self.send_drain_event)();
    }

    /// Stops every thread and closes every connection, then joins them.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the core loop and stop the timer mid-period.
        (self.send_shutdown_event)();
        self.timer_stop.take();
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        // Unblock every reader (and any client writer stuck in a send).
        for stream in self.inbound.lock().expect("inbound registry").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        let conn_threads =
            std::mem::take(&mut *self.conn_threads.lock().expect("conn thread registry"));
        for thread in conn_threads {
            let _ = thread.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop<P: Protocol>(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    inbound: InboundRegistry,
    clients: ClientRegistry,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    events_tx: Sender<Event<P::Message>>,
    faults: Arc<FaultPlan>,
    fault_injection: bool,
    status_admin: bool,
    telemetry: Arc<NodeTelemetry>,
) {
    // Generation counter for connections accepted by this node; tags
    // registry entries so teardown of a stale connection never clobbers
    // a newer one.
    let generations = AtomicU64::new(0);
    loop {
        let Ok((stream, _)) = listener.accept() else { break };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let generation = generations.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            inbound.lock().expect("inbound registry").insert(generation, clone);
        }
        let events_tx = events_tx.clone();
        let clients = Arc::clone(&clients);
        let shutdown = Arc::clone(&shutdown);
        let inbound_cleanup = Arc::clone(&inbound);
        let threads_for_reader = Arc::clone(&conn_threads);
        let faults = Arc::clone(&faults);
        let telemetry = Arc::clone(&telemetry);
        // shutdown() unblocks readers by closing the registered stream
        // clones, after which they exit on read error and are joined.
        if let Ok(handle) = std::thread::Builder::new().name("conn-reader".into()).spawn(move || {
            let _ = read_connection::<P>(
                stream,
                generation,
                events_tx,
                clients,
                threads_for_reader,
                shutdown,
                faults,
                fault_injection,
                status_admin,
                telemetry,
            );
            // Deregister so long-running nodes don't accumulate dead fds.
            inbound_cleanup.lock().expect("inbound registry").remove(&generation);
        }) {
            let mut registry = conn_threads.lock().expect("conn thread registry");
            // Reap finished connection threads as new ones arrive, so the
            // handle list tracks live connections, not connection history.
            registry.retain(|h| !h.is_finished());
            registry.push(handle);
        }
    }
}

/// Sends replies (and pre-framed `STATUS` responses) to one connected
/// client from a bounded queue. Runs on its own thread so a slow client
/// never blocks the core loop; overflow and write errors drop frames
/// (the client's retry logic recovers).
fn client_writer(mut stream: TcpStream, replies: Receiver<ClientFrame>) {
    while let Ok(queued) = replies.recv() {
        let result = match queued {
            ClientFrame::Reply(reply) => write_value(&mut stream, frame_kind::REPLY, &reply),
            ClientFrame::Raw(framed) => io::Write::write_all(&mut stream, &framed),
        };
        if result.is_err() {
            break;
        }
    }
}

/// Drives one inbound connection: handshake, then a frame-decode loop.
#[allow(clippy::too_many_arguments)]
fn read_connection<P: Protocol>(
    mut stream: TcpStream,
    generation: u64,
    events_tx: Sender<Event<P::Message>>,
    clients: ClientRegistry,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown: Arc<AtomicBool>,
    faults: Arc<FaultPlan>,
    fault_injection: bool,
    status_admin: bool,
    telemetry: Arc<NodeTelemetry>,
) -> io::Result<()> {
    let (kind, hello) = read_frame(&mut stream)?;
    telemetry.bytes_in.add((FRAME_HEADER_LEN + hello.len()) as u64);
    // For replica connections, the hello-claimed peer id. State-transfer
    // frames are only honored on peer connections and only when their
    // embedded replica id matches the hello, so one connection cannot
    // speak for several replicas (the hello itself is unauthenticated —
    // the same trust boundary as the rest of the transport; protocol
    // payloads carry their own signatures/MACs).
    let mut peer_id: Option<ReplicaId> = None;
    // The connection's writer lane, kept on the reader so `STATUS`
    // responses can be answered in-line (client connections only).
    let mut status_lane: Option<SyncSender<ClientFrame>> = None;
    let registered_client = match kind {
        frame_kind::PEER_HELLO => {
            peer_id = Some(
                decode(&hello).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            );
            None
        }
        frame_kind::CLIENT_HELLO => {
            let client: ClientId = decode(&hello)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let (reply_tx, reply_rx) = sync_channel::<ClientFrame>(CLIENT_REPLY_QUEUE);
            let writer_stream = stream.try_clone()?;
            if let Ok(handle) = std::thread::Builder::new()
                .name("client-writer".into())
                .spawn(move || client_writer(writer_stream, reply_rx))
            {
                conn_threads.lock().expect("conn thread registry").push(handle);
            }
            status_lane = Some(reply_tx.clone());
            // A reconnecting client replaces its own old entry; the old
            // writer exits when its sender is dropped here.
            clients
                .lock()
                .expect("client registry")
                .insert(client, ClientEntry { generation, replies: reply_tx });
            Some(client)
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("connection opened with frame kind {other}"),
            ));
        }
    };

    let result = (|| -> io::Result<()> {
        loop {
            let (kind, payload) = read_frame(&mut stream)?;
            telemetry.bytes_in.add((FRAME_HEADER_LEN + payload.len()) as u64);
            if shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let event = match kind {
                frame_kind::PROTOCOL => Event::Peer(
                    decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                ),
                frame_kind::REQUESTS => Event::Requests(
                    decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                ),
                frame_kind::STATE_REQUEST => {
                    let req: StateTransferRequest = decode(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    // Peer connections only, and the requester must be
                    // who the connection claims to be.
                    if peer_id != Some(req.replica) {
                        continue;
                    }
                    Event::StateRequest(req)
                }
                frame_kind::STATE_RESPONSE => {
                    let resp: StateTransferResponse = decode(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    if peer_id != Some(resp.replica) {
                        continue;
                    }
                    Event::StateResponse(resp)
                }
                frame_kind::FAULT_CONTROL => {
                    // Chaos-plane steering, honored only when the node
                    // was launched with fault injection enabled: the
                    // frame is unauthenticated, so on a production node
                    // it is protocol garbage and costs the sender its
                    // connection. When enabled, commands apply directly
                    // to the shared plan, never routed through the core
                    // loop — a wedged protocol must not delay a heal.
                    if !fault_injection {
                        return Err(io::Error::new(
                            io::ErrorKind::PermissionDenied,
                            "fault injection is not enabled on this node",
                        ));
                    }
                    let cmd: FaultCommand = decode(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    faults.apply(cmd);
                    telemetry.record_event(StatusEvent::FaultPlanApplied);
                    continue;
                }
                frame_kind::STATUS => {
                    // Observability queries and admin verbs, answered
                    // in-line through the connection's writer lane so
                    // responses never interleave with replies. Only
                    // client connections carry a lane; a peer sending
                    // STATUS is protocol garbage.
                    let Some(lane) = &status_lane else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "STATUS on a peer connection",
                        ));
                    };
                    let req: StatusRequest = decode(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    let response = match req.verb {
                        StatusVerb::Snapshot => StatusResponse::Snapshot(telemetry.snapshot()),
                        StatusVerb::Events { since } => StatusResponse::Events {
                            head: telemetry.journal.head(),
                            events: telemetry.journal.since(since),
                        },
                        StatusVerb::Drain if status_admin => {
                            telemetry.request_drain();
                            let _ = events_tx.send(Event::Drain);
                            StatusResponse::DrainStarted
                        }
                        StatusVerb::Drain => {
                            // Ungated admin verb: answer Refused, then
                            // close the connection — the FAULT_CONTROL
                            // stance. The writer drains its queue before
                            // exiting, so the refusal still reaches the
                            // caller.
                            let framed =
                                Arc::new(frame(frame_kind::STATUS, &encode(&StatusResponse::Refused)));
                            let _ = lane.try_send(ClientFrame::Raw(framed));
                            return Err(io::Error::new(
                                io::ErrorKind::PermissionDenied,
                                "status admin verbs are not enabled on this node",
                            ));
                        }
                    };
                    let framed = Arc::new(frame(frame_kind::STATUS, &encode(&response)));
                    let _ = lane.try_send(ClientFrame::Raw(framed));
                    continue;
                }
                _ => continue, // tolerate unknown kinds from newer peers
            };
            if events_tx.send(event).is_err() {
                return Ok(()); // node shut down
            }
        }
    })();

    if let Some(client) = registered_client {
        // Remove only our own registration: if the client already
        // reconnected, the entry carries a newer generation and stays.
        let mut registry = clients.lock().expect("client registry");
        if registry.get(&client).is_some_and(|e| e.generation == generation) {
            registry.remove(&client);
        }
    }
    result
}

/// The blocking backend's peer path: one reconnecting [`PeerOutbox`]
/// per other replica. Self-sends drop naturally (the node's own id is
/// never in the map).
impl PeerSink for HashMap<ReplicaId, PeerOutbox> {
    fn broadcast_frame(&mut self, framed: Arc<Vec<u8>>) {
        for outbox in self.values() {
            outbox.enqueue(Arc::clone(&framed));
        }
    }

    fn send_frame(&mut self, to: ReplicaId, framed: Arc<Vec<u8>>) {
        if let Some(outbox) = self.get(&to) {
            outbox.enqueue(framed);
        }
    }

    fn is_peer(&self, id: ReplicaId) -> bool {
        self.contains_key(&id)
    }
}

/// The blocking backend's client path: hand each reply to the client's
/// writer thread without blocking the core loop. A full queue or a gone
/// client drops the reply (the client's own timeout/retry logic
/// recovers); refused frames count into the node's ring-refusal
/// telemetry, same as the evented backend's bounded rings.
struct BlockingClients {
    registry: ClientRegistry,
    telemetry: Arc<NodeTelemetry>,
}

impl ClientSink for BlockingClients {
    fn reply(&mut self, to: ClientId, reply: Reply) {
        let mut registry = self.registry.lock().expect("client registry");
        if let Some(entry) = registry.get(&to) {
            match entry.replies.try_send(ClientFrame::Reply(reply)) {
                Err(TrySendError::Disconnected(_)) => {
                    registry.remove(&to);
                }
                Err(TrySendError::Full(_)) => self.telemetry.ring_refusals.inc(),
                Ok(()) => {}
            }
        }
    }
}

fn core_loop<P: Protocol>(
    id: ReplicaId,
    protocol: P,
    events_rx: Receiver<Event<P::Message>>,
    outboxes: HashMap<ReplicaId, PeerOutbox>,
    clients: ClientRegistry,
    recovery: Option<RecoveryPolicy>,
    group_commit: Duration,
    gauges: Gauges,
) {
    // The hosting core owns the protocol, the request-aware view-change
    // timer, and the state-transfer client (see `crate::host`); this
    // loop only moves events in and batches out.
    let mut peers = outboxes;
    let queue_depth_high_water = gauges.telemetry.queue_depth_high_water.clone();
    let mut clients =
        BlockingClients { registry: clients, telemetry: Arc::clone(&gauges.telemetry) };
    let mut host = Host::new(id, protocol, recovery, gauges, &mut peers);

    'main: while let Ok(first) = events_rx.recv() {
        // One *drain batch*: the first event plus — when group commit is
        // on — everything else queued within the linger window, all
        // sharing the single flush_durable (fsync) in finish_batch.
        let mut outputs = Vec::new();
        let mut stop = false;
        let deadline =
            (!group_commit.is_zero()).then(|| Instant::now() + group_commit);
        let mut next = Some(first);
        let mut drained = 0usize;
        while let Some(event) = next.take() {
            if matches!(event, Event::Shutdown) {
                stop = true;
                break;
            }
            outputs.extend(host.handle(event, &mut peers));
            drained += 1;
            let Some(deadline) = deadline else { break };
            if drained >= MAX_DRAIN_BATCH {
                break;
            }
            next = match events_rx.try_recv() {
                Ok(event) => Some(event),
                Err(TryRecvError::Empty) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    if wait.is_zero() {
                        None
                    } else {
                        events_rx.recv_timeout(wait).ok()
                    }
                }
                Err(TryRecvError::Disconnected) => None,
            };
        }
        queue_depth_high_water.record_max(drained as u64);
        host.finish_batch(outputs, &mut peers, &mut clients);
        if stop {
            break 'main;
        }
    }
    for (_, outbox) in peers {
        outbox.close();
    }
}

/// A socket client: connects to replicas, submits requests, and streams
/// back replies.
///
/// The client is transport only — pair it with the protocol-specific
/// client state machines (`PbftClient`, `SplitBftClient`, `HybridClient`)
/// which own authentication, retransmission and reply-quorum logic.
#[derive(Debug)]
pub struct TcpClient {
    id: ClientId,
    // Indexed by replica position in the address book; `None` for
    // replicas that were unreachable at connect time.
    streams: Vec<Option<TcpStream>>,
    replies: Receiver<Reply>,
}

impl TcpClient {
    /// Connects to the replicas in `addrs` (all attempts run
    /// concurrently, each retrying with backoff), announcing `id` so
    /// replies route back here.
    ///
    /// Connection is best-effort: a BFT client must make progress with
    /// up to `f` replicas unreachable, so dead replicas are skipped
    /// (check [`TcpClient::connected`]) — once the first replica
    /// answers, stragglers get a short grace window rather than the
    /// full `timeout`, keeping connect latency independent of how many
    /// replicas are down. Errors only if *no* replica could be reached
    /// within `timeout`.
    pub fn connect(id: ClientId, addrs: &[SocketAddr], timeout: Duration) -> io::Result<Self> {
        /// How long after the first successful connection the remaining
        /// attempts may keep retrying.
        const STRAGGLER_GRACE: Duration = Duration::from_secs(1);

        if addrs.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no replica addresses given"));
        }
        let deadline = Instant::now() + timeout;
        let give_up = Arc::new(AtomicBool::new(false));
        let (conn_tx, conn_rx) = channel::<(usize, io::Result<TcpStream>)>();
        for (index, addr) in addrs.iter().enumerate() {
            let addr = *addr;
            let give_up = Arc::clone(&give_up);
            let conn_tx = conn_tx.clone();
            let _ = std::thread::Builder::new().name("client-connect".into()).spawn(move || {
                let result = (|| -> io::Result<TcpStream> {
                    let mut stream = connect_until(addr, deadline, &give_up)?;
                    let _ = stream.set_nodelay(true);
                    write_value(&mut stream, frame_kind::CLIENT_HELLO, &id)?;
                    Ok(stream)
                })();
                let _ = conn_tx.send((index, result));
            });
        }
        drop(conn_tx);

        let (reply_tx, replies) = channel();
        let mut streams: Vec<Option<TcpStream>> = (0..addrs.len()).map(|_| None).collect();
        let mut last_err: Option<io::Error> = None;
        let mut pending = addrs.len();
        let mut grace_deadline: Option<Instant> = None;
        while pending > 0 {
            let wait_until = grace_deadline.unwrap_or(deadline);
            let remaining = wait_until.saturating_duration_since(Instant::now());
            let Ok((index, result)) = conn_rx.recv_timeout(remaining.max(Duration::from_millis(1)))
            else {
                if give_up.load(Ordering::SeqCst) {
                    break; // grace expired; abandon stragglers
                }
                if Instant::now() >= wait_until {
                    give_up.store(true, Ordering::SeqCst);
                }
                continue;
            };
            pending -= 1;
            match result {
                Ok(stream) => {
                    if grace_deadline.is_none() {
                        grace_deadline = Some((Instant::now() + STRAGGLER_GRACE).min(deadline));
                    }
                    let mut reader = stream.try_clone()?;
                    let reply_tx = reply_tx.clone();
                    // Reader threads exit when the socket closes (client
                    // drop or replica shutdown) or the receiver is gone.
                    let _ =
                        std::thread::Builder::new().name("client-reader".into()).spawn(move || {
                            while let Ok(reply) =
                                read_value::<_, Reply>(&mut reader, frame_kind::REPLY)
                            {
                                if reply_tx.send(reply).is_err() {
                                    break;
                                }
                            }
                        });
                    streams[index] = Some(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        give_up.store(true, Ordering::SeqCst);

        if streams.iter().all(Option::is_none) {
            return Err(last_err
                .unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "no replica reachable")));
        }
        Ok(TcpClient { id, streams, replies })
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// How many replicas this client reached at connect time.
    pub fn connected(&self) -> usize {
        self.streams.iter().flatten().count()
    }

    /// Sends a request batch to the `replica_index`-th replica (clients
    /// address the primary; index 0 in view 0). Errors if that replica
    /// was unreachable — callers should fall back to [`Self::send_all`],
    /// the PBFT client rule for a suspected-faulty primary.
    pub fn send_to(&mut self, replica_index: usize, requests: &[Request]) -> io::Result<()> {
        let requests: Vec<Request> = requests.to_vec();
        match &mut self.streams[replica_index] {
            Some(stream) => write_value(stream, frame_kind::REQUESTS, &requests),
            None => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("replica {replica_index} was unreachable at connect time"),
            )),
        }
    }

    /// Sends a request batch to every reachable replica (used after a
    /// suspected primary failure, per the PBFT client rule). Errors only
    /// if no send succeeded.
    pub fn send_all(&mut self, requests: &[Request]) -> io::Result<()> {
        let requests: Vec<Request> = requests.to_vec();
        let mut delivered = 0;
        for stream in self.streams.iter_mut().flatten() {
            if write_value(stream, frame_kind::REQUESTS, &requests).is_ok() {
                delivered += 1;
            }
        }
        if delivered == 0 {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "no replica reachable"));
        }
        Ok(())
    }

    /// The stream of replies from all connected replicas. Feed these to
    /// the protocol client's `on_reply` until it reports completion.
    pub fn replies(&self) -> &Receiver<Reply> {
        &self.replies
    }

    /// Closes all connections.
    pub fn close(self) {
        for stream in self.streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Per-request completion handler used by [`PipelinedTcpClient`]: called
/// on the dispatcher thread for every reply to the registered request;
/// returns `true` once the request is complete (handler is then dropped).
pub type ReplyHandler = Box<dyn FnMut(&Reply) -> bool + Send>;

/// A pipelined socket client: many outstanding requests per client id,
/// each with its own completion handler.
///
/// The protocol client state machines (`PbftClient` & friends) are
/// strictly lock-step — one request in flight, issue panics otherwise —
/// which caps a closed-loop driver at one request per round trip. Load
/// generation needs *pipelining*: this client keeps a registry of
/// in-flight [`splitbft_types::RequestId`]s and routes every incoming
/// [`Reply`] to the
/// matching handler on a dedicated dispatcher thread. Handlers own the
/// per-request protocol logic (MAC verification, `f + 1` reply quorum)
/// and signal completion by returning `true`.
///
/// Requests are *submitted*, not awaited: the caller bounds its own
/// pipeline depth by counting completions. Retransmission stays with the
/// caller too ([`PipelinedTcpClient::resend`]), because only it knows the
/// request bytes and its timeout policy.
pub struct PipelinedTcpClient {
    id: ClientId,
    streams: Vec<Option<TcpStream>>,
    pending: Arc<Mutex<HashMap<splitbft_types::RequestId, ReplyHandler>>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for PipelinedTcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedTcpClient")
            .field("id", &self.id)
            .field("connected", &self.connected())
            .field("outstanding", &self.outstanding())
            .finish_non_exhaustive()
    }
}

impl PipelinedTcpClient {
    /// Connects like [`TcpClient::connect`] (concurrent, best-effort,
    /// tolerates up to `f` dead replicas) and starts the reply
    /// dispatcher.
    pub fn connect(id: ClientId, addrs: &[SocketAddr], timeout: Duration) -> io::Result<Self> {
        let TcpClient { id, streams, replies } = TcpClient::connect(id, addrs, timeout)?;
        let pending: Arc<Mutex<HashMap<splitbft_types::RequestId, ReplyHandler>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let registry = Arc::clone(&pending);
        // Exits when every per-replica reader is gone (socket teardown
        // drops their reply senders and disconnects the channel).
        let dispatcher = std::thread::Builder::new()
            .name("client-dispatch".into())
            .spawn(move || {
                while let Ok(reply) = replies.recv() {
                    let mut map = registry.lock().expect("pending registry");
                    if let Some(handler) = map.get_mut(&reply.request) {
                        if handler(&reply) {
                            map.remove(&reply.request);
                        }
                    }
                }
            })
            .expect("spawn client dispatcher");
        Ok(PipelinedTcpClient { id, streams, pending, dispatcher: Some(dispatcher) })
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// How many replicas this client reached at connect time.
    pub fn connected(&self) -> usize {
        self.streams.iter().flatten().count()
    }

    /// Requests submitted but not yet completed (or cancelled).
    pub fn outstanding(&self) -> usize {
        self.pending.lock().expect("pending registry").len()
    }

    /// Registers `handler` for the request and sends it to the
    /// `primary_index`-th replica, falling back to all reachable replicas
    /// if that one was unreachable at connect time. On send failure the
    /// handler is deregistered again before the error is returned.
    pub fn submit(
        &mut self,
        primary_index: usize,
        request: &Request,
        handler: ReplyHandler,
    ) -> io::Result<()> {
        self.submit_batch(primary_index, vec![(request.clone(), handler)])
    }

    /// Submits several requests in **one** `REQUESTS` frame — the
    /// client-side counterpart of the replicas' send-path batching. A
    /// deep pipeline refilling after a burst of completions pays one
    /// syscall and one frame header for the whole refill instead of one
    /// per request.
    ///
    /// All handlers are registered before the frame is written (a reply
    /// can race back immediately); on send failure every handler is
    /// deregistered again before the error is returned.
    pub fn submit_batch(
        &mut self,
        primary_index: usize,
        batch: Vec<(Request, ReplyHandler)>,
    ) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut requests = Vec::with_capacity(batch.len());
        {
            let mut pending = self.pending.lock().expect("pending registry");
            for (request, handler) in batch {
                pending.insert(request.id, handler);
                requests.push(request);
            }
        }
        let result = self.send(primary_index, &requests);
        if result.is_err() {
            let mut pending = self.pending.lock().expect("pending registry");
            for request in &requests {
                pending.remove(&request.id);
            }
        }
        result
    }

    /// Retransmits an in-flight request to every reachable replica (the
    /// PBFT client rule for a suspected-faulty primary); replicas that
    /// already executed it re-send their cached reply.
    pub fn resend(&mut self, request: &Request) -> io::Result<()> {
        let batch = vec![request.clone()];
        let mut delivered = 0;
        for stream in self.streams.iter_mut().flatten() {
            if write_value(stream, frame_kind::REQUESTS, &batch).is_ok() {
                delivered += 1;
            }
        }
        if delivered == 0 {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "no replica reachable"));
        }
        Ok(())
    }

    /// Deregisters a request's handler (e.g. after a client-side
    /// timeout). Returns `false` if it already completed.
    pub fn cancel(&mut self, request: splitbft_types::RequestId) -> bool {
        self.pending.lock().expect("pending registry").remove(&request).is_some()
    }

    fn send(&mut self, primary_index: usize, requests: &[Request]) -> io::Result<()> {
        let batch: Vec<Request> = requests.to_vec();
        if let Some(Some(stream)) = self.streams.get_mut(primary_index) {
            if write_value(stream, frame_kind::REQUESTS, &batch).is_ok() {
                return Ok(());
            }
        }
        let mut delivered = 0;
        for stream in self.streams.iter_mut().flatten() {
            if write_value(stream, frame_kind::REQUESTS, &batch).is_ok() {
                delivered += 1;
            }
        }
        if delivered == 0 {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "no replica reachable"));
        }
        Ok(())
    }

    /// Closes all connections and joins the dispatcher.
    pub fn close(mut self) {
        for stream in self.streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }
}

fn connect_until(
    addr: SocketAddr,
    deadline: Instant,
    give_up: &AtomicBool,
) -> io::Result<TcpStream> {
    let mut backoff = Duration::from_millis(10);
    loop {
        if give_up.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "connect abandoned"));
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() + backoff >= deadline => return Err(e),
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(200));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ProtocolOutput;
    use splitbft_types::{Request, RequestId, Timestamp, View};

    /// A trivial protocol echoing request payloads straight back,
    /// exercising the transport without consensus logic.
    struct EchoProtocol {
        id: ReplicaId,
    }

    impl Protocol for EchoProtocol {
        type Message = u64;

        fn on_message(&mut self, _msg: u64) -> Vec<ProtocolOutput<u64>> {
            Vec::new()
        }

        fn on_client_requests(&mut self, requests: Vec<Request>) -> Vec<ProtocolOutput<u64>> {
            requests
                .into_iter()
                .map(|r| ProtocolOutput::Reply {
                    to: r.client(),
                    reply: Reply {
                        view: View(0),
                        request: r.id,
                        replica: self.id,
                        result: r.op,
                        encrypted: false,
                        auth: [0u8; 32],
                    },
                })
                .collect()
        }

        fn on_timeout(&mut self) -> Vec<ProtocolOutput<u64>> {
            Vec::new()
        }

        // Replies are produced synchronously, so nothing is ever
        // pending — lets the drain test reach the sealed state.
        fn has_pending_requests(&self) -> bool {
            false
        }
    }

    #[test]
    fn echo_roundtrip_over_sockets() {
        let config = TcpNodeConfig::new(
            ReplicaId(0),
            "127.0.0.1:0".parse().unwrap(),
            Vec::new(),
        );
        let node = TcpNode::spawn(config, EchoProtocol { id: ReplicaId(0) }).unwrap();
        let addr = node.local_addr();

        let mut client =
            TcpClient::connect(ClientId(7), &[addr], Duration::from_secs(5)).unwrap();
        let request = Request {
            id: RequestId { client: ClientId(7), timestamp: Timestamp(1) },
            op: bytes::Bytes::from_static(b"ping"),
            encrypted: false,
            auth: [0u8; 32],
        };
        client.send_to(0, &[request]).unwrap();
        let reply = client.replies().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&reply.result[..], b"ping");

        client.close();
        node.shutdown();
    }

    #[test]
    fn fault_control_requires_explicit_opt_in() {
        use splitbft_types::fault::LinkRule;
        let cmd = FaultCommand::SetRule(LinkRule {
            from: ReplicaId(0),
            to: ReplicaId(1),
            drop_percent: 100,
            duplicate_percent: 0,
            reorder_percent: 0,
            delay_ms: 0,
        });

        // Default node: the connection is closed and the plan stays
        // inert. EOF on our side proves the reader rejected the frame
        // (rather than us merely not waiting long enough).
        let config =
            TcpNodeConfig::new(ReplicaId(0), "127.0.0.1:0".parse().unwrap(), Vec::new());
        let faults = Arc::clone(&config.faults);
        let node = TcpNode::spawn(config, EchoProtocol { id: ReplicaId(0) }).unwrap();
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        write_value(&mut stream, frame_kind::CLIENT_HELLO, &ClientId(123)).unwrap();
        write_value(&mut stream, frame_kind::FAULT_CONTROL, &cmd).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(
            io::Read::read(&mut stream, &mut buf).unwrap_or(0),
            0,
            "the node must close a connection that sends FAULT_CONTROL"
        );
        assert!(!faults.is_active(), "the command must not reach the plan");
        node.shutdown();

        // Opted-in node: the same command lands.
        let mut config =
            TcpNodeConfig::new(ReplicaId(0), "127.0.0.1:0".parse().unwrap(), Vec::new());
        config.fault_injection = true;
        let faults = Arc::clone(&config.faults);
        let node = TcpNode::spawn(config, EchoProtocol { id: ReplicaId(0) }).unwrap();
        crate::fault::send_fault_command(node.local_addr(), &cmd).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !faults.is_active() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(faults.is_active(), "an opted-in node applies the command");
        node.shutdown();
    }

    #[test]
    fn status_snapshot_and_events_serve_without_any_gate() {
        let config =
            TcpNodeConfig::new(ReplicaId(3), "127.0.0.1:0".parse().unwrap(), Vec::new());
        let node = TcpNode::spawn(config, EchoProtocol { id: ReplicaId(3) }).unwrap();
        let addr = node.local_addr();

        // Commit one request so the snapshot has something to report.
        let mut client =
            TcpClient::connect(ClientId(7), &[addr], Duration::from_secs(5)).unwrap();
        let request = Request {
            id: RequestId { client: ClientId(7), timestamp: Timestamp(1) },
            op: bytes::Bytes::from_static(b"ping"),
            encrypted: false,
            auth: [0u8; 32],
        };
        client.send_to(0, &[request]).unwrap();
        client.replies().recv_timeout(Duration::from_secs(5)).unwrap();

        let snapshot = crate::status::fetch_snapshot(addr).unwrap();
        assert_eq!(snapshot.version, splitbft_types::status::SNAPSHOT_VERSION);
        assert_eq!(snapshot.replica, 3);
        assert!(snapshot.bytes_in > 0, "the request frame must be counted");
        assert!(!snapshot.draining);

        let (head, events) = crate::status::fetch_events(addr, 0).unwrap();
        assert_eq!(head as usize, events.len(), "a fresh journal starts at zero");

        client.close();
        node.shutdown();
    }

    #[test]
    fn status_drain_requires_explicit_opt_in() {
        // Default node: the Drain verb is refused and the connection
        // closed — same stance as FAULT_CONTROL, but with a decodable
        // refusal so operators see *why*.
        let config =
            TcpNodeConfig::new(ReplicaId(0), "127.0.0.1:0".parse().unwrap(), Vec::new());
        let node = TcpNode::spawn(config, EchoProtocol { id: ReplicaId(0) }).unwrap();
        let err = crate::status::request_drain(node.local_addr())
            .expect_err("an ungated node must refuse the drain verb");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::PermissionDenied | io::ErrorKind::UnexpectedEof
            ),
            "refusal surfaces as PermissionDenied (or EOF if the close wins the race): {err}"
        );
        let snapshot = crate::status::fetch_snapshot(node.local_addr()).unwrap();
        assert!(!snapshot.draining, "a refused drain must not start");
        node.shutdown();

        // Opted-in node: the drain runs to completion — checkpoint
        // sealed, journal evidence recorded, snapshot flags flipped.
        let mut config =
            TcpNodeConfig::new(ReplicaId(0), "127.0.0.1:0".parse().unwrap(), Vec::new());
        config.status_admin = true;
        let node = TcpNode::spawn(config, EchoProtocol { id: ReplicaId(0) }).unwrap();
        let addr = node.local_addr();
        crate::status::request_drain(addr).unwrap();
        crate::status::await_event(addr, 0, Duration::from_secs(10), |event| {
            matches!(event, StatusEvent::DrainCompleted)
        })
        .unwrap();
        let snapshot = crate::status::fetch_snapshot(addr).unwrap();
        assert!(snapshot.draining && snapshot.drained);
        node.shutdown();
    }

    #[test]
    fn submit_batch_coalesces_into_one_requests_frame() {
        use crate::transport::read_value as read_typed;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _: ClientId = read_typed(&mut conn, frame_kind::CLIENT_HELLO).unwrap();
            // Exactly one REQUESTS frame carrying the whole batch.
            let batch: Vec<Request> = read_typed(&mut conn, frame_kind::REQUESTS).unwrap();
            batch.len()
        });

        let mut client =
            PipelinedTcpClient::connect(ClientId(4), &[addr], Duration::from_secs(5)).unwrap();
        let batch: Vec<(Request, crate::tcp::ReplyHandler)> = (1..=5u64)
            .map(|i| {
                let request = Request {
                    id: RequestId { client: ClientId(4), timestamp: Timestamp(i) },
                    op: bytes::Bytes::from_static(b"op"),
                    encrypted: false,
                    auth: [0u8; 32],
                };
                (request, Box::new(|_: &Reply| true) as crate::tcp::ReplyHandler)
            })
            .collect();
        client.submit_batch(0, batch).unwrap();
        assert_eq!(client.outstanding(), 5, "all five handlers registered");
        assert_eq!(accept.join().unwrap(), 5, "one frame, five requests");
        client.close();
    }

    #[test]
    fn state_transfer_requests_are_rate_limited_by_the_inflight_guard() {
        // A recovering node that never makes progress, ticking fast
        // (50 ms) against a peer that never answers. Without the
        // in-flight guard every tick re-broadcast a STATE_REQUEST
        // (~24 in 1.2 s); with it only the startup round plus at most
        // one post-deadline retry may go out.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer_addr = listener.local_addr().unwrap();
        let mut config = TcpNodeConfig::new(
            ReplicaId(0),
            "127.0.0.1:0".parse().unwrap(),
            vec![PeerAddr { id: ReplicaId(1), addr: peer_addr }],
        );
        config.timeout_every = Some(Duration::from_millis(50));
        config.recovery = Some(RecoveryPolicy { agreement: 1 });
        let node = TcpNode::spawn(config, EchoProtocol { id: ReplicaId(0) }).unwrap();

        let counted = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
            let _: ReplicaId = read_value(&mut conn, frame_kind::PEER_HELLO).unwrap();
            let deadline = Instant::now() + Duration::from_millis(1200);
            let mut requests = 0u32;
            while Instant::now() < deadline {
                match read_frame(&mut conn) {
                    Ok((kind, _)) if kind == frame_kind::STATE_REQUEST => requests += 1,
                    Ok(_) => {}
                    Err(_) => {} // read timeout between frames
                }
            }
            requests
        });
        let requests = counted.join().unwrap();
        assert!(
            (1..=2).contains(&requests),
            "expected 1-2 rate-limited state requests, saw {requests}"
        );
        node.shutdown();
    }

    #[test]
    fn pipelined_client_completes_many_outstanding_requests() {
        let config =
            TcpNodeConfig::new(ReplicaId(0), "127.0.0.1:0".parse().unwrap(), Vec::new());
        let node = TcpNode::spawn(config, EchoProtocol { id: ReplicaId(0) }).unwrap();
        let addr = node.local_addr();

        let mut client =
            PipelinedTcpClient::connect(ClientId(9), &[addr], Duration::from_secs(5)).unwrap();
        let (done_tx, done_rx) = channel();
        // Submit 8 requests without waiting for any reply — the lock-step
        // TcpClient cannot express this.
        for i in 1..=8u64 {
            let request = Request {
                id: RequestId { client: ClientId(9), timestamp: Timestamp(i) },
                op: bytes::Bytes::copy_from_slice(&i.to_le_bytes()),
                encrypted: false,
                auth: [0u8; 32],
            };
            let done_tx = done_tx.clone();
            client
                .submit(
                    0,
                    &request,
                    Box::new(move |reply| {
                        let _ = done_tx.send(reply.result.clone());
                        true
                    }),
                )
                .unwrap();
        }
        let mut echoed: Vec<u64> = (0..8)
            .map(|_| {
                let result = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
                u64::from_le_bytes(result[..].try_into().unwrap())
            })
            .collect();
        echoed.sort_unstable();
        assert_eq!(echoed, (1..=8).collect::<Vec<u64>>());
        // Completed handlers are deregistered (the dispatcher removes the
        // entry right after the handler signals completion).
        let deadline = Instant::now() + Duration::from_secs(5);
        while client.outstanding() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(client.outstanding(), 0);
        client.close();
        node.shutdown();
    }
}
