//! A threaded in-process cluster runtime.
//!
//! Each node runs on its own OS thread (mirroring the paper's deployment
//! of one SplitBFT process per VM) and exchanges messages over in-process
//! channels. The runnable examples use this to demonstrate live clusters
//! without sockets; the TCP counterpart is [`crate::tcp::TcpNode`], and
//! both host the same [`Protocol`] state machines unchanged.

use crate::fault::{FaultDecision, FaultPlan};
use crate::transport::{Protocol, ProtocolOutput, WireMessage};
use splitbft_types::{ClientId, ReplicaId, Reply, Request};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Inputs a hosted node can receive.
#[derive(Debug, Clone)]
pub enum NodeInput<M> {
    /// A protocol message from a peer.
    Message(M),
    /// Client requests (delivered to the node acting as primary).
    ClientRequests(Vec<Request>),
    /// The view-change timer fired.
    ViewTimeout,
    /// Stop the node thread.
    Shutdown,
}

/// A handle to one running node.
#[derive(Debug)]
pub struct NodeHandle<M> {
    /// The node's replica id.
    pub id: ReplicaId,
    sender: Sender<NodeInput<M>>,
    thread: Option<JoinHandle<()>>,
}

/// An in-process cluster of protocol nodes on threads.
///
/// Generic over the message vocabulary, so it hosts any [`Protocol`]:
/// PBFT and SplitBFT clusters exchange `ConsensusMessage`s, hybrid
/// clusters exchange `HybridMessage`s.
#[derive(Debug)]
pub struct ThreadedCluster<M> {
    nodes: Vec<NodeHandle<M>>,
    replies: Receiver<(ClientId, Reply)>,
    /// Per-node mirror of `(shard_progress(), shard_fsyncs())`, updated
    /// by each node thread after every input — the in-process analog of
    /// the TCP runtime's gauges, so sharded tests can watch every
    /// group's progress without sockets.
    shard_gauges: Arc<Mutex<Vec<(Vec<u64>, Vec<u64>)>>>,
}

impl<M: WireMessage> ThreadedCluster<M> {
    /// Spawns one thread per node. `make` builds the protocol replica for
    /// each index.
    pub fn spawn<P>(n: usize, make: impl Fn(ReplicaId) -> P) -> Self
    where
        P: Protocol<Message = M>,
    {
        Self::spawn_with_faults(n, FaultPlan::shared(0), make)
    }

    /// Like [`ThreadedCluster::spawn`], but every peer-to-peer send first
    /// consults the shared `faults` plan — the same hook the TCP runtime
    /// places in its outboxes, so in-process chaos tests exercise the
    /// deployment semantics. Replies to clients are never faulted (the
    /// plan models the replica interconnect, not the client edge).
    pub fn spawn_with_faults<P>(
        n: usize,
        faults: Arc<FaultPlan>,
        make: impl Fn(ReplicaId) -> P,
    ) -> Self
    where
        P: Protocol<Message = M>,
    {
        let (reply_tx, reply_rx) = channel();
        let channels: Vec<(Sender<NodeInput<M>>, Receiver<NodeInput<M>>)> =
            (0..n).map(|_| channel()).collect();
        let senders: Vec<Sender<NodeInput<M>>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();
        let shard_gauges = Arc::new(Mutex::new(vec![(Vec::new(), Vec::new()); n]));

        let mut nodes = Vec::with_capacity(n);
        for (i, (tx, rx)) in channels.into_iter().enumerate() {
            let id = ReplicaId(i as u32);
            let mut protocol = make(id);
            let peers = senders.clone();
            let replies = reply_tx.clone();
            let faults = Arc::clone(&faults);
            let gauges = Arc::clone(&shard_gauges);
            let thread = std::thread::Builder::new()
                .name(format!("splitbft-node-{i}"))
                .spawn(move || {
                    let deliver = |to: usize, msg: M| {
                        match faults.decide(id, ReplicaId(to as u32)) {
                            FaultDecision::Deliver => {
                                if let Some(peer) = peers.get(to) {
                                    let _ = peer.send(NodeInput::Message(msg));
                                }
                            }
                            FaultDecision::Drop => {}
                            FaultDecision::Duplicate => {
                                if let Some(peer) = peers.get(to) {
                                    let _ = peer.send(NodeInput::Message(msg.clone()));
                                    let _ = peer.send(NodeInput::Message(msg));
                                }
                            }
                            FaultDecision::DeliverAfter(delay) => {
                                // Held back on a sleeper thread so later
                                // sends overtake it, as on the wire.
                                if let Some(peer) = peers.get(to).cloned() {
                                    let _ = std::thread::Builder::new()
                                        .name(format!("splitbft-delay-{i}-to-{to}"))
                                        .spawn(move || {
                                            std::thread::sleep(delay);
                                            let _ = peer.send(NodeInput::Message(msg));
                                        });
                                }
                            }
                        }
                    };
                    while let Ok(input) = rx.recv() {
                        let outputs = match input {
                            NodeInput::Message(msg) => protocol.on_message(msg),
                            NodeInput::ClientRequests(reqs) => protocol.on_client_requests(reqs),
                            NodeInput::ViewTimeout => protocol.on_timeout(),
                            NodeInput::Shutdown => break,
                        };
                        if let Ok(mut gauges) = gauges.lock() {
                            gauges[i] = (protocol.shard_progress(), protocol.shard_fsyncs());
                        }
                        for output in outputs {
                            match output {
                                ProtocolOutput::Broadcast(msg) => {
                                    for j in 0..peers.len() {
                                        if j != i {
                                            deliver(j, msg.clone());
                                        }
                                    }
                                }
                                ProtocolOutput::Send { to, msg } => {
                                    // Self-sends are dropped, matching the
                                    // TCP runtime's semantics.
                                    if to.as_usize() != i {
                                        deliver(to.as_usize(), msg);
                                    }
                                }
                                ProtocolOutput::Reply { to, reply } => {
                                    let _ = replies.send((to, reply));
                                }
                            }
                        }
                    }
                })
                .expect("spawn node thread");
            nodes.push(NodeHandle { id, sender: tx, thread: Some(thread) });
        }
        ThreadedCluster { nodes, replies: reply_rx, shard_gauges }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sends client requests to the node at `replica` (typically the
    /// current primary).
    pub fn submit(&self, replica: ReplicaId, requests: Vec<Request>) {
        let _ = self.nodes[replica.as_usize()].sender.send(NodeInput::ClientRequests(requests));
    }

    /// Fires the view-change timer on one node.
    pub fn trigger_timeout(&self, replica: ReplicaId) {
        let _ = self.nodes[replica.as_usize()].sender.send(NodeInput::ViewTimeout);
    }

    /// Injects a raw protocol message into one node (adversarial tests).
    pub fn inject(&self, replica: ReplicaId, msg: M) {
        let _ = self.nodes[replica.as_usize()].sender.send(NodeInput::Message(msg));
    }

    /// The stream of `(client, reply)` pairs produced by the cluster.
    pub fn replies(&self) -> &Receiver<(ClientId, Reply)> {
        &self.replies
    }

    /// Per-shard progress of one node, as observed after its most
    /// recent input — a single entry for unsharded protocols, one per
    /// consensus group for a sharded combinator, empty before the
    /// node's first input.
    pub fn shard_progress(&self, replica: ReplicaId) -> Vec<u64> {
        self.shard_gauges.lock().expect("shard gauges")[replica.as_usize()].0.clone()
    }

    /// Per-shard WAL-fsync counts of one node (see
    /// [`ThreadedCluster::shard_progress`] for the shape).
    pub fn shard_fsyncs(&self, replica: ReplicaId) -> Vec<u64> {
        self.shard_gauges.lock().expect("shard gauges")[replica.as_usize()].1.clone()
    }

    /// Stops all node threads and waits for them.
    pub fn shutdown(mut self) {
        for node in &self.nodes {
            let _ = node.sender.send(NodeInput::Shutdown);
        }
        for node in &mut self.nodes {
            if let Some(thread) = node.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A toy protocol that acks every request batch directly.
    struct Echo {
        id: ReplicaId,
    }

    impl Protocol for Echo {
        type Message = u32;

        fn on_message(&mut self, _msg: u32) -> Vec<ProtocolOutput<u32>> {
            Vec::new()
        }

        fn on_client_requests(&mut self, reqs: Vec<Request>) -> Vec<ProtocolOutput<u32>> {
            reqs.into_iter()
                .map(|r| ProtocolOutput::Reply {
                    to: r.client(),
                    reply: Reply {
                        view: splitbft_types::View(0),
                        request: r.id,
                        replica: self.id,
                        result: r.op,
                        encrypted: false,
                        auth: [0u8; 32],
                    },
                })
                .collect()
        }

        fn on_timeout(&mut self) -> Vec<ProtocolOutput<u32>> {
            Vec::new()
        }
    }

    #[test]
    fn echo_cluster_roundtrip() {
        let cluster = ThreadedCluster::spawn(4, |id| Echo { id });
        assert_eq!(cluster.len(), 4);
        let req = Request {
            id: splitbft_types::RequestId {
                client: ClientId(1),
                timestamp: splitbft_types::Timestamp(1),
            },
            op: bytes::Bytes::from_static(b"ping"),
            encrypted: false,
            auth: [0u8; 32],
        };
        cluster.submit(ReplicaId(2), vec![req]);
        let (client, reply) =
            cluster.replies().recv_timeout(Duration::from_secs(5)).expect("reply");
        assert_eq!(client, ClientId(1));
        assert_eq!(&reply.result[..], b"ping");
        cluster.shutdown();
    }
}
