//! A threaded in-process cluster runtime.
//!
//! Each node runs on its own OS thread (mirroring the paper's deployment
//! of one SplitBFT process per VM) and exchanges
//! [`ConsensusMessage`]s over channels. The runnable examples use this to
//! demonstrate live clusters; correctness tests prefer the deterministic
//! pumps, and performance numbers come from the discrete-event simulator.

use crossbeam::channel::{unbounded, Receiver, Sender};
use splitbft_types::{ClientId, ConsensusMessage, ReplicaId, Reply, Request};
use std::thread::JoinHandle;

/// Inputs a hosted node can receive.
#[derive(Debug, Clone)]
pub enum NodeInput {
    /// A protocol message from a peer.
    Message(ConsensusMessage),
    /// Client requests (delivered to the node acting as primary).
    ClientRequests(Vec<Request>),
    /// The view-change timer fired.
    ViewTimeout,
    /// Stop the node thread.
    Shutdown,
}

/// Outputs a hosted node can produce.
#[derive(Debug, Clone)]
pub enum NodeOutput {
    /// Send to every other replica.
    Broadcast(ConsensusMessage),
    /// Deliver a reply to a client.
    Reply {
        /// Destination client.
        to: ClientId,
        /// The reply.
        reply: Reply,
    },
}

/// Protocol logic hostable on a cluster thread. Implemented for both the
/// PBFT baseline and SplitBFT replicas by the `splitbft` facade crate.
pub trait NodeLogic: Send + 'static {
    /// Handles one input, returning the outputs to route.
    fn handle(&mut self, input: NodeInput) -> Vec<NodeOutput>;
}

/// A handle to one running node.
#[derive(Debug)]
pub struct NodeHandle {
    /// The node's replica id.
    pub id: ReplicaId,
    sender: Sender<NodeInput>,
    thread: Option<JoinHandle<()>>,
}

/// An in-process cluster of protocol nodes on threads.
#[derive(Debug)]
pub struct ThreadedCluster {
    nodes: Vec<NodeHandle>,
    replies: Receiver<(ClientId, Reply)>,
}

impl ThreadedCluster {
    /// Spawns one thread per node. `make` builds the logic for each
    /// replica index.
    pub fn spawn<L: NodeLogic>(n: usize, make: impl Fn(ReplicaId) -> L) -> Self {
        let (reply_tx, reply_rx) = unbounded();
        let channels: Vec<(Sender<NodeInput>, Receiver<NodeInput>)> =
            (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<NodeInput>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();

        let mut nodes = Vec::with_capacity(n);
        for (i, (tx, rx)) in channels.into_iter().enumerate() {
            let id = ReplicaId(i as u32);
            let mut logic = make(id);
            let peers = senders.clone();
            let replies = reply_tx.clone();
            let thread = std::thread::Builder::new()
                .name(format!("splitbft-node-{i}"))
                .spawn(move || {
                    while let Ok(input) = rx.recv() {
                        if matches!(input, NodeInput::Shutdown) {
                            break;
                        }
                        for output in logic.handle(input) {
                            match output {
                                NodeOutput::Broadcast(msg) => {
                                    for (j, peer) in peers.iter().enumerate() {
                                        if j != i {
                                            let _ = peer.send(NodeInput::Message(msg.clone()));
                                        }
                                    }
                                }
                                NodeOutput::Reply { to, reply } => {
                                    let _ = replies.send((to, reply));
                                }
                            }
                        }
                    }
                })
                .expect("spawn node thread");
            nodes.push(NodeHandle { id, sender: tx, thread: Some(thread) });
        }
        ThreadedCluster { nodes, replies: reply_rx }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sends client requests to the node at `replica` (typically the
    /// current primary).
    pub fn submit(&self, replica: ReplicaId, requests: Vec<Request>) {
        let _ = self.nodes[replica.as_usize()].sender.send(NodeInput::ClientRequests(requests));
    }

    /// Fires the view-change timer on one node.
    pub fn trigger_timeout(&self, replica: ReplicaId) {
        let _ = self.nodes[replica.as_usize()].sender.send(NodeInput::ViewTimeout);
    }

    /// Injects a raw protocol message into one node (adversarial tests).
    pub fn inject(&self, replica: ReplicaId, msg: ConsensusMessage) {
        let _ = self.nodes[replica.as_usize()].sender.send(NodeInput::Message(msg));
    }

    /// The stream of `(client, reply)` pairs produced by the cluster.
    pub fn replies(&self) -> &Receiver<(ClientId, Reply)> {
        &self.replies
    }

    /// Stops all node threads and waits for them.
    pub fn shutdown(mut self) {
        for node in &self.nodes {
            let _ = node.sender.send(NodeInput::Shutdown);
        }
        for node in &mut self.nodes {
            if let Some(thread) = node.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A toy logic that acks every request batch directly.
    struct Echo {
        id: ReplicaId,
    }

    impl NodeLogic for Echo {
        fn handle(&mut self, input: NodeInput) -> Vec<NodeOutput> {
            match input {
                NodeInput::ClientRequests(reqs) => reqs
                    .into_iter()
                    .map(|r| NodeOutput::Reply {
                        to: r.client(),
                        reply: Reply {
                            view: splitbft_types::View(0),
                            request: r.id,
                            replica: self.id,
                            result: r.op,
                            encrypted: false,
                            auth: [0u8; 32],
                        },
                    })
                    .collect(),
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn echo_cluster_roundtrip() {
        let cluster = ThreadedCluster::spawn(4, |id| Echo { id });
        assert_eq!(cluster.len(), 4);
        let req = Request {
            id: splitbft_types::RequestId {
                client: ClientId(1),
                timestamp: splitbft_types::Timestamp(1),
            },
            op: bytes::Bytes::from_static(b"ping"),
            encrypted: false,
            auth: [0u8; 32],
        };
        cluster.submit(ReplicaId(2), vec![req]);
        let (client, reply) =
            cluster.replies().recv_timeout(Duration::from_secs(5)).expect("reply");
        assert_eq!(client, ClientId(1));
        assert_eq!(&reply.result[..], b"ping");
        cluster.shutdown();
    }
}
