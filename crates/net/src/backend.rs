//! Pluggable transport backends behind one trait.
//!
//! Every runtime in this crate hosts the same sans-I/O
//! [`Protocol`] core; what varies is how bytes move. This module names
//! that variation point: a [`TransportBackend`] binds listeners, starts
//! nodes, and connects clients, while [`RunningNode`] /
//! [`TransportClient`] give the started pieces a uniform surface so
//! benches, tests, and the CLI can swap backends without code changes.
//!
//! Three backends ship:
//!
//! - [`BlockingBackend`] — the original thread-per-connection runtime
//!   ([`crate::tcp::TcpNode`]), kept as the conservative fallback;
//! - [`EventedBackend`] — the single-threaded readiness loop
//!   ([`crate::evented::EventedNode`]); same wire format, a fraction of
//!   the threads and allocations;
//! - [`InProcessBackend`] — a channel bus for tests: no sockets, but
//!   messages still travel as *framed bytes* through the real frame
//!   parser, so the conformance suite exercises the identical decode
//!   path the socket backends use.

use crate::evented::{BoundEventedNode, EventedNode};
use crate::fault::{FaultDecision, FaultPlan};
use crate::host::{ClientSink, Event, Gauges, Host, PeerSink, MAX_DRAIN_BATCH};
use crate::tcp::{BoundTcpNode, TcpClient, TcpNode, TcpNodeConfig};
use crate::transport::{frame_kind, Protocol};
use splitbft_obs::NodeTelemetry;
use splitbft_types::wire::{encode, frame, parse_frame};
use splitbft_types::{
    ClientId, FaultCommand, ReplicaId, Reply, Request, StateTransferRequest,
    StateTransferResponse,
};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::str::FromStr;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which socket backend a deployment runs — the value behind the CLI's
/// `--transport` flag and the cluster file's `transport` key. (The
/// in-process backend is a test harness and has no CLI spelling.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Thread-per-connection blocking sockets ([`BlockingBackend`]).
    #[default]
    Blocking,
    /// Single-threaded nonblocking readiness loop ([`EventedBackend`]).
    Evented,
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "blocking" => Ok(TransportKind::Blocking),
            "evented" => Ok(TransportKind::Evented),
            other => Err(format!("unknown transport {other:?} (expected blocking|evented)")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::Blocking => "blocking",
            TransportKind::Evented => "evented",
        })
    }
}

/// A bound-but-idle listener of either socket backend — the
/// runtime-dispatched counterpart of [`TransportBackend::Bound`] for
/// callers that pick the backend from a flag instead of a type
/// parameter.
#[derive(Debug)]
pub enum AnyBound {
    /// Blocking thread-per-connection listener.
    Blocking(BoundTcpNode),
    /// Evented readiness-loop listener.
    Evented(BoundEventedNode),
}

impl AnyBound {
    /// Binds a listener for replica `id` at `listen` with the backend
    /// `kind` selects.
    pub fn bind(kind: TransportKind, id: ReplicaId, listen: SocketAddr) -> io::Result<Self> {
        Ok(match kind {
            TransportKind::Blocking => AnyBound::Blocking(TcpNode::bind(id, listen)?),
            TransportKind::Evented => AnyBound::Evented(EventedNode::bind(id, listen)?),
        })
    }

    /// This listener's replica id.
    pub fn id(&self) -> ReplicaId {
        match self {
            AnyBound::Blocking(b) => b.id(),
            AnyBound::Evented(b) => b.id(),
        }
    }

    /// The resolved listen address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match self {
            AnyBound::Blocking(b) => b.local_addr(),
            AnyBound::Evented(b) => b.local_addr(),
        }
    }

    /// Starts the node around `protocol` on whichever backend this
    /// listener was bound with.
    pub fn start<P: Protocol>(
        self,
        config: TcpNodeConfig,
        protocol: P,
    ) -> io::Result<AnyNode> {
        Ok(match self {
            AnyBound::Blocking(b) => AnyNode::Blocking(b.start(config, protocol)?),
            AnyBound::Evented(b) => AnyNode::Evented(b.start(config, protocol)?),
        })
    }
}

/// A running node of either socket backend (see [`AnyBound`]). Same
/// observable surface as the concrete node types.
#[derive(Debug)]
pub enum AnyNode {
    /// A node served by the blocking backend.
    Blocking(TcpNode),
    /// A node served by the evented backend.
    Evented(EventedNode),
}

impl AnyNode {
    /// This node's replica id.
    pub fn id(&self) -> ReplicaId {
        match self {
            AnyNode::Blocking(n) => n.id(),
            AnyNode::Evented(n) => n.id(),
        }
    }

    /// The address peers and clients reach this node at.
    pub fn local_addr(&self) -> SocketAddr {
        match self {
            AnyNode::Blocking(n) => n.local_addr(),
            AnyNode::Evented(n) => n.local_addr(),
        }
    }

    /// The hosted protocol's latest `progress()` gauge.
    pub fn progress(&self) -> u64 {
        match self {
            AnyNode::Blocking(n) => n.progress(),
            AnyNode::Evented(n) => n.progress(),
        }
    }

    /// The hosted protocol's latest `durable_fsyncs()` gauge.
    pub fn fsyncs(&self) -> u64 {
        match self {
            AnyNode::Blocking(n) => n.fsyncs(),
            AnyNode::Evented(n) => n.fsyncs(),
        }
    }

    /// Per-shard breakdown of [`AnyNode::progress`].
    pub fn shard_progress(&self) -> Vec<u64> {
        match self {
            AnyNode::Blocking(n) => n.shard_progress(),
            AnyNode::Evented(n) => n.shard_progress(),
        }
    }

    /// Per-shard breakdown of [`AnyNode::fsyncs`].
    pub fn shard_fsyncs(&self) -> Vec<u64> {
        match self {
            AnyNode::Blocking(n) => n.shard_fsyncs(),
            AnyNode::Evented(n) => n.shard_fsyncs(),
        }
    }

    /// This node's telemetry hub (counters, gauges, event journal).
    pub fn telemetry(&self) -> Arc<NodeTelemetry> {
        match self {
            AnyNode::Blocking(n) => n.telemetry(),
            AnyNode::Evented(n) => n.telemetry(),
        }
    }

    /// Starts a graceful drain (see the concrete nodes' docs): stop
    /// admitting requests, seal a checkpoint, flush the WAL. Poll
    /// `telemetry().drained()`, then call [`AnyNode::shutdown`].
    pub fn request_drain(&self) {
        match self {
            AnyNode::Blocking(n) => n.request_drain(),
            AnyNode::Evented(n) => n.request_drain(),
        }
    }

    /// Stops the node and joins its threads.
    pub fn shutdown(self) {
        match self {
            AnyNode::Blocking(n) => n.shutdown(),
            AnyNode::Evented(n) => n.shutdown(),
        }
    }
}

/// A factory for one transport flavor. All backends speak the same
/// frame vocabulary over whatever medium they use, so a cluster can be
/// assembled from any mix (the socket backends even interoperate on
/// the wire).
pub trait TransportBackend {
    /// A reserved-but-idle listener (its address is already resolved).
    type Bound: Send;
    /// A started replica node.
    type Node: RunningNode;
    /// A connected client endpoint.
    type Client: TransportClient;

    /// Reserves a listener for replica `id` at `listen` (port 0 picks a
    /// free port) without starting anything — so a whole cluster's
    /// address book can be collected before the first node runs.
    fn bind(&self, id: ReplicaId, listen: SocketAddr) -> io::Result<Self::Bound>;

    /// The resolved address of a bound listener.
    fn local_addr(&self, bound: &Self::Bound) -> io::Result<SocketAddr>;

    /// Starts the node around `protocol`. `config.listen` is ignored —
    /// the bound listener already fixed the address.
    fn start<P: Protocol>(
        &self,
        bound: Self::Bound,
        config: TcpNodeConfig,
        protocol: P,
    ) -> io::Result<Self::Node>;

    /// Connects a client to the replicas at `addrs` (index in `addrs` =
    /// replica index for [`TransportClient::send_to`]).
    fn connect_client(
        &self,
        id: ClientId,
        addrs: &[SocketAddr],
        timeout: Duration,
    ) -> io::Result<Self::Client>;
}

/// The uniform observable surface of a started replica node.
pub trait RunningNode: Send {
    /// This node's replica id.
    fn id(&self) -> ReplicaId;
    /// The address peers and clients reach this node at.
    fn local_addr(&self) -> SocketAddr;
    /// The hosted protocol's latest `progress()` gauge.
    fn progress(&self) -> u64;
    /// The hosted protocol's latest `durable_fsyncs()` gauge.
    fn fsyncs(&self) -> u64;
    /// Per-shard breakdown of [`RunningNode::progress`].
    fn shard_progress(&self) -> Vec<u64>;
    /// Per-shard breakdown of [`RunningNode::fsyncs`].
    fn shard_fsyncs(&self) -> Vec<u64>;
    /// This node's telemetry hub (counters, gauges, event journal).
    fn telemetry(&self) -> Arc<NodeTelemetry>;
    /// Starts a graceful drain: stop admitting client requests, finish
    /// in-flight batches, seal a checkpoint, flush the WAL. Poll
    /// `telemetry().drained()` before [`RunningNode::shutdown`].
    fn request_drain(&self);
    /// Stops the node and joins its threads.
    fn shutdown(self);
}

/// The uniform client endpoint: submit request batches, stream replies.
pub trait TransportClient: Send {
    /// Sends a request batch to one replica by address-book index.
    ///
    /// # Errors
    ///
    /// When that replica is unreachable.
    fn send_to(&mut self, replica_index: usize, requests: &[Request]) -> io::Result<()>;

    /// Sends a request batch to every reachable replica.
    ///
    /// # Errors
    ///
    /// When no replica is reachable.
    fn send_all(&mut self, requests: &[Request]) -> io::Result<()>;

    /// The stream of replies from all replicas.
    fn replies(&self) -> &Receiver<Reply>;

    /// Tears the connection down.
    fn close(self);
}

// --- blocking ---------------------------------------------------------------

/// The thread-per-connection blocking-socket backend
/// ([`crate::tcp::TcpNode`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockingBackend;

impl TransportBackend for BlockingBackend {
    type Bound = BoundTcpNode;
    type Node = TcpNode;
    type Client = TcpClient;

    fn bind(&self, id: ReplicaId, listen: SocketAddr) -> io::Result<BoundTcpNode> {
        TcpNode::bind(id, listen)
    }

    fn local_addr(&self, bound: &BoundTcpNode) -> io::Result<SocketAddr> {
        bound.local_addr()
    }

    fn start<P: Protocol>(
        &self,
        bound: BoundTcpNode,
        config: TcpNodeConfig,
        protocol: P,
    ) -> io::Result<TcpNode> {
        bound.start(config, protocol)
    }

    fn connect_client(
        &self,
        id: ClientId,
        addrs: &[SocketAddr],
        timeout: Duration,
    ) -> io::Result<TcpClient> {
        TcpClient::connect(id, addrs, timeout)
    }
}

impl RunningNode for TcpNode {
    fn id(&self) -> ReplicaId {
        TcpNode::id(self)
    }
    fn local_addr(&self) -> SocketAddr {
        TcpNode::local_addr(self)
    }
    fn progress(&self) -> u64 {
        TcpNode::progress(self)
    }
    fn fsyncs(&self) -> u64 {
        TcpNode::fsyncs(self)
    }
    fn shard_progress(&self) -> Vec<u64> {
        TcpNode::shard_progress(self)
    }
    fn shard_fsyncs(&self) -> Vec<u64> {
        TcpNode::shard_fsyncs(self)
    }
    fn telemetry(&self) -> Arc<NodeTelemetry> {
        TcpNode::telemetry(self)
    }
    fn request_drain(&self) {
        TcpNode::request_drain(self)
    }
    fn shutdown(self) {
        TcpNode::shutdown(self)
    }
}

impl TransportClient for TcpClient {
    fn send_to(&mut self, replica_index: usize, requests: &[Request]) -> io::Result<()> {
        TcpClient::send_to(self, replica_index, requests)
    }
    fn send_all(&mut self, requests: &[Request]) -> io::Result<()> {
        TcpClient::send_all(self, requests)
    }
    fn replies(&self) -> &Receiver<Reply> {
        TcpClient::replies(self)
    }
    fn close(self) {
        TcpClient::close(self)
    }
}

// --- evented ----------------------------------------------------------------

/// The nonblocking readiness-loop backend
/// ([`crate::evented::EventedNode`]). Clients are ordinary
/// [`TcpClient`]s — the backend choice is a *node-side* concern; the
/// wire protocol is identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventedBackend;

impl TransportBackend for EventedBackend {
    type Bound = BoundEventedNode;
    type Node = EventedNode;
    type Client = TcpClient;

    fn bind(&self, id: ReplicaId, listen: SocketAddr) -> io::Result<BoundEventedNode> {
        EventedNode::bind(id, listen)
    }

    fn local_addr(&self, bound: &BoundEventedNode) -> io::Result<SocketAddr> {
        bound.local_addr()
    }

    fn start<P: Protocol>(
        &self,
        bound: BoundEventedNode,
        config: TcpNodeConfig,
        protocol: P,
    ) -> io::Result<EventedNode> {
        bound.start(config, protocol)
    }

    fn connect_client(
        &self,
        id: ClientId,
        addrs: &[SocketAddr],
        timeout: Duration,
    ) -> io::Result<TcpClient> {
        TcpClient::connect(id, addrs, timeout)
    }
}

impl RunningNode for EventedNode {
    fn id(&self) -> ReplicaId {
        EventedNode::id(self)
    }
    fn local_addr(&self) -> SocketAddr {
        EventedNode::local_addr(self)
    }
    fn progress(&self) -> u64 {
        EventedNode::progress(self)
    }
    fn fsyncs(&self) -> u64 {
        EventedNode::fsyncs(self)
    }
    fn shard_progress(&self) -> Vec<u64> {
        EventedNode::shard_progress(self)
    }
    fn shard_fsyncs(&self) -> Vec<u64> {
        EventedNode::shard_fsyncs(self)
    }
    fn telemetry(&self) -> Arc<NodeTelemetry> {
        EventedNode::telemetry(self)
    }
    fn request_drain(&self) {
        EventedNode::request_drain(self)
    }
    fn shutdown(self) {
        EventedNode::shutdown(self)
    }
}

// --- in-process -------------------------------------------------------------

/// Who put a message on the bus. This substitutes for the socket
/// backends' hello handshake: the origin is attached by construction,
/// so identity pinning (state-transfer frames must come from the peer
/// they claim) checks against it directly.
#[derive(Debug, Clone)]
enum BusOrigin {
    /// Another replica.
    Peer(ReplicaId),
    /// A client, carrying the channel its replies go back on.
    Client(ClientId, Sender<Reply>),
}

/// One bus delivery: framed bytes from one origin, or a shutdown nudge.
#[derive(Debug)]
enum BusMsg {
    /// Framed bytes — complete frames, parsed by the receiving node
    /// through the same [`parse_frame`] path the socket backends use.
    Frames(BusOrigin, Arc<Vec<u8>>),
    /// Force a drain batch (graceful-drain nudge; the draining flag
    /// itself lives on the node's telemetry).
    Drain,
    /// Stop the node's loop.
    Shutdown,
}

type BusMap = Mutex<HashMap<SocketAddr, Sender<BusMsg>>>;

/// A socket-free backend for tests: every "address" is an entry in a
/// shared channel table and every message still travels as framed
/// bytes. Clone the backend to share one bus; distinct instances are
/// fully isolated clusters.
#[derive(Debug, Clone, Default)]
pub struct InProcessBackend {
    bus: Arc<BusMap>,
    next_port: Arc<AtomicU16>,
}

impl InProcessBackend {
    /// A fresh, empty bus.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A reserved in-process "listener": a registered bus slot plus the
/// receiving end of its channel.
#[derive(Debug)]
pub struct BoundInProcessNode {
    id: ReplicaId,
    addr: SocketAddr,
    bus: Arc<BusMap>,
    tx: Sender<BusMsg>,
    rx: Receiver<BusMsg>,
}

/// A running in-process replica node.
#[derive(Debug)]
pub struct InProcessNode {
    id: ReplicaId,
    addr: SocketAddr,
    bus: Arc<BusMap>,
    tx: Sender<BusMsg>,
    thread: Option<JoinHandle<()>>,
    gauges: Gauges,
}

/// A client endpoint on the in-process bus.
#[derive(Debug)]
pub struct InProcessClient {
    id: ClientId,
    nodes: Vec<Option<Sender<BusMsg>>>,
    reply_tx: Sender<Reply>,
    replies: Receiver<Reply>,
}

impl TransportBackend for InProcessBackend {
    type Bound = BoundInProcessNode;
    type Node = InProcessNode;
    type Client = InProcessClient;

    fn bind(&self, id: ReplicaId, listen: SocketAddr) -> io::Result<BoundInProcessNode> {
        let addr = if listen.port() != 0 {
            listen
        } else {
            // Synthetic port allocation: unique within this bus, never
            // an actual socket.
            let port = 1 + self.next_port.fetch_add(1, Ordering::Relaxed);
            SocketAddr::new(listen.ip(), port)
        };
        let (tx, rx) = channel();
        self.bus.lock().expect("bus").insert(addr, tx.clone());
        Ok(BoundInProcessNode { id, addr, bus: Arc::clone(&self.bus), tx, rx })
    }

    fn local_addr(&self, bound: &BoundInProcessNode) -> io::Result<SocketAddr> {
        Ok(bound.addr)
    }

    fn start<P: Protocol>(
        &self,
        bound: BoundInProcessNode,
        config: TcpNodeConfig,
        protocol: P,
    ) -> io::Result<InProcessNode> {
        let BoundInProcessNode { id, addr, bus, tx, rx } = bound;
        let gauges = Gauges::new(NodeTelemetry::new(id.0));
        let loop_gauges = gauges.clone();
        let loop_bus = Arc::clone(&bus);
        let thread = std::thread::Builder::new()
            .name(format!("node-{}-inproc", id.0))
            .spawn(move || bus_loop(rx, loop_bus, config, protocol, loop_gauges))
            .map_err(io::Error::other)?;
        Ok(InProcessNode { id, addr, bus, tx, thread: Some(thread), gauges })
    }

    fn connect_client(
        &self,
        id: ClientId,
        addrs: &[SocketAddr],
        _timeout: Duration,
    ) -> io::Result<InProcessClient> {
        let bus = self.bus.lock().expect("bus");
        let nodes: Vec<Option<Sender<BusMsg>>> =
            addrs.iter().map(|addr| bus.get(addr).cloned()).collect();
        drop(bus);
        if nodes.iter().all(Option::is_none) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "no replica registered at any given address",
            ));
        }
        let (reply_tx, replies) = channel();
        Ok(InProcessClient { id, nodes, reply_tx, replies })
    }
}

impl RunningNode for InProcessNode {
    fn id(&self) -> ReplicaId {
        self.id
    }
    fn local_addr(&self) -> SocketAddr {
        self.addr
    }
    fn progress(&self) -> u64 {
        self.gauges.progress.load(Ordering::SeqCst)
    }
    fn fsyncs(&self) -> u64 {
        self.gauges.fsyncs.load(Ordering::SeqCst)
    }
    fn shard_progress(&self) -> Vec<u64> {
        self.gauges.shards.lock().expect("shard gauges").0.clone()
    }
    fn shard_fsyncs(&self) -> Vec<u64> {
        self.gauges.shards.lock().expect("shard gauges").1.clone()
    }
    fn telemetry(&self) -> Arc<NodeTelemetry> {
        Arc::clone(&self.gauges.telemetry)
    }
    fn request_drain(&self) {
        self.gauges.telemetry.request_drain();
        // Nudge the bus loop so the drain batch (and its seal) runs
        // even on an otherwise idle node.
        let _ = self.tx.send(BusMsg::Drain);
    }
    fn shutdown(mut self) {
        // The bus entry stays: sends to the dead channel fail silently
        // (a lost frame, as on a real network), and a re-bind at the
        // same address replaces the entry.
        let _ = self.bus;
        let _ = self.tx.send(BusMsg::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl TransportClient for InProcessClient {
    fn send_to(&mut self, replica_index: usize, requests: &[Request]) -> io::Result<()> {
        let framed = Arc::new(frame(frame_kind::REQUESTS, &encode(&requests.to_vec())));
        let origin = BusOrigin::Client(self.id, self.reply_tx.clone());
        match &self.nodes[replica_index] {
            Some(tx) if tx.send(BusMsg::Frames(origin, framed)).is_ok() => Ok(()),
            _ => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("replica {replica_index} not connected"),
            )),
        }
    }

    fn send_all(&mut self, requests: &[Request]) -> io::Result<()> {
        let framed = Arc::new(frame(frame_kind::REQUESTS, &encode(&requests.to_vec())));
        let mut delivered = 0;
        for tx in self.nodes.iter().flatten() {
            let origin = BusOrigin::Client(self.id, self.reply_tx.clone());
            if tx.send(BusMsg::Frames(origin, Arc::clone(&framed))).is_ok() {
                delivered += 1;
            }
        }
        if delivered == 0 {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "no replica reachable"));
        }
        Ok(())
    }

    fn replies(&self) -> &Receiver<Reply> {
        &self.replies
    }

    fn close(self) {}
}

/// The in-process [`PeerSink`]: looks the destination up on the bus
/// per send (so a restarted node's fresh channel is picked up), with
/// the fault plan consulted exactly like the socket send paths.
struct BusPeers {
    local: ReplicaId,
    faults: Arc<FaultPlan>,
    bus: Arc<BusMap>,
    links: HashMap<ReplicaId, SocketAddr>,
}

impl BusPeers {
    fn deliver(&self, to: ReplicaId, framed: Arc<Vec<u8>>) {
        let Some(addr) = self.links.get(&to) else { return };
        let sender = self.bus.lock().expect("bus").get(addr).cloned();
        if let Some(tx) = sender {
            let _ = tx.send(BusMsg::Frames(BusOrigin::Peer(self.local), framed));
        }
    }

    fn enqueue(&self, to: ReplicaId, framed: Arc<Vec<u8>>) {
        if !self.links.contains_key(&to) {
            return; // self-send or unknown peer: dropped
        }
        match self.faults.decide(self.local, to) {
            FaultDecision::Deliver => self.deliver(to, framed),
            FaultDecision::Drop => {}
            FaultDecision::Duplicate => {
                self.deliver(to, Arc::clone(&framed));
                self.deliver(to, framed);
            }
            FaultDecision::DeliverAfter(delay) => {
                // Test backend: a throwaway timer thread is fine.
                let bus = Arc::clone(&self.bus);
                let addr = *self.links.get(&to).expect("checked above");
                let local = self.local;
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    let sender = bus.lock().expect("bus").get(&addr).cloned();
                    if let Some(tx) = sender {
                        let _ = tx.send(BusMsg::Frames(BusOrigin::Peer(local), framed));
                    }
                });
            }
        }
    }
}

impl PeerSink for BusPeers {
    fn broadcast_frame(&mut self, framed: Arc<Vec<u8>>) {
        let peers: Vec<ReplicaId> = self.links.keys().copied().collect();
        for to in peers {
            self.enqueue(to, Arc::clone(&framed));
        }
    }

    fn send_frame(&mut self, to: ReplicaId, framed: Arc<Vec<u8>>) {
        self.enqueue(to, framed);
    }

    fn is_peer(&self, id: ReplicaId) -> bool {
        self.links.contains_key(&id)
    }
}

/// The in-process [`ClientSink`]: reply channels learned from request
/// frames' origins.
struct BusClients {
    replies: HashMap<ClientId, Sender<Reply>>,
}

impl ClientSink for BusClients {
    fn reply(&mut self, to: ClientId, reply: Reply) {
        if let Some(tx) = self.replies.get(&to) {
            if tx.send(reply).is_err() {
                self.replies.remove(&to);
            }
        }
    }
}

/// Parses one bus delivery into protocol events, enforcing the same
/// rules as the socket read paths: origin-pinned state transfer,
/// `FAULT_CONTROL` honored only with fault injection on, unknown or
/// out-of-place kinds dropped. Returns `true` on shutdown.
fn decode_bus_msg<P: Protocol>(
    msg: BusMsg,
    fault_injection: bool,
    faults: &FaultPlan,
    clients: &mut BusClients,
    pending: &mut VecDeque<Event<P::Message>>,
) -> bool {
    let (origin, bytes) = match msg {
        BusMsg::Frames(origin, bytes) => (origin, bytes),
        BusMsg::Drain => {
            pending.push_back(Event::Drain);
            return false;
        }
        BusMsg::Shutdown => return true,
    };
    if let BusOrigin::Client(id, reply_tx) = &origin {
        clients.replies.insert(*id, reply_tx.clone());
    }
    let mut offset = 0;
    while offset < bytes.len() {
        let (view, consumed) = match parse_frame(&bytes[offset..]) {
            Ok(Some(parsed)) => parsed,
            // Truncated or corrupt bus payload: a sender bug, not a
            // network condition — drop the remainder.
            Ok(None) | Err(_) => break,
        };
        match (view.kind, &origin) {
            (frame_kind::PROTOCOL, BusOrigin::Peer(_)) => {
                if let Ok(msg) = splitbft_types::wire::decode::<P::Message>(view.payload) {
                    pending.push_back(Event::Peer(msg));
                }
            }
            (frame_kind::REQUESTS, _) => {
                if let Ok(requests) = splitbft_types::wire::decode(view.payload) {
                    pending.push_back(Event::Requests(requests));
                }
            }
            (frame_kind::STATE_REQUEST, BusOrigin::Peer(peer)) => {
                if let Ok(req) =
                    splitbft_types::wire::decode::<StateTransferRequest>(view.payload)
                {
                    if req.replica == *peer {
                        pending.push_back(Event::StateRequest(req));
                    }
                }
            }
            (frame_kind::STATE_RESPONSE, BusOrigin::Peer(peer)) => {
                if let Ok(resp) =
                    splitbft_types::wire::decode::<StateTransferResponse>(view.payload)
                {
                    if resp.replica == *peer {
                        pending.push_back(Event::StateResponse(resp));
                    }
                }
            }
            (frame_kind::FAULT_CONTROL, BusOrigin::Client(..)) if fault_injection => {
                if let Ok(cmd) = splitbft_types::wire::decode::<FaultCommand>(view.payload) {
                    faults.apply(cmd);
                }
            }
            _ => {}
        }
        offset += consumed;
    }
    false
}

fn bus_loop<P: Protocol>(
    rx: Receiver<BusMsg>,
    bus: Arc<BusMap>,
    config: TcpNodeConfig,
    protocol: P,
    gauges: Gauges,
) {
    let id = config.id;
    let mut peers = BusPeers {
        local: id,
        faults: Arc::clone(&config.faults),
        bus,
        links: config
            .peers
            .iter()
            .filter(|p| p.id != id)
            .map(|p| (p.id, p.addr))
            .collect(),
    };
    let mut clients = BusClients { replies: HashMap::new() };
    let mut host = Host::new(id, protocol, config.recovery, gauges, &mut peers);
    let mut next_tick = config.timeout_every.map(|period| Instant::now() + period);
    let mut pending: VecDeque<Event<P::Message>> = VecDeque::new();

    // Same drain-batch shape as the blocking core loop: block for the
    // first event (synthesizing timer ticks from the wait), then — with
    // group commit on — keep draining within the linger window so the
    // whole batch shares one flush_durable.
    'main: loop {
        let first = loop {
            if let Some(event) = pending.pop_front() {
                break event;
            }
            let msg = match next_tick {
                None => match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break 'main,
                },
                Some(tick) => {
                    let wait = tick.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(wait) {
                        Ok(msg) => msg,
                        Err(RecvTimeoutError::Timeout) => {
                            next_tick = config
                                .timeout_every
                                .map(|period| Instant::now() + period);
                            break Event::Timeout;
                        }
                        Err(RecvTimeoutError::Disconnected) => break 'main,
                    }
                }
            };
            if decode_bus_msg::<P>(
                msg,
                config.fault_injection,
                &config.faults,
                &mut clients,
                &mut pending,
            ) {
                break 'main;
            }
        };

        let mut outputs = host.handle(first, &mut peers);
        let mut drained = 1usize;
        let deadline =
            (!config.group_commit.is_zero()).then(|| Instant::now() + config.group_commit);
        if let Some(deadline) = deadline {
            'batch: while drained < MAX_DRAIN_BATCH {
                let event = loop {
                    if let Some(event) = pending.pop_front() {
                        break event;
                    }
                    let msg = match rx.try_recv() {
                        Ok(msg) => Some(msg),
                        Err(TryRecvError::Empty) => {
                            let wait = deadline.saturating_duration_since(Instant::now());
                            if wait.is_zero() {
                                break 'batch;
                            }
                            rx.recv_timeout(wait).ok()
                        }
                        Err(TryRecvError::Disconnected) => None,
                    };
                    let Some(msg) = msg else { break 'batch };
                    if decode_bus_msg::<P>(
                        msg,
                        config.fault_injection,
                        &config.faults,
                        &mut clients,
                        &mut pending,
                    ) {
                        host.finish_batch(outputs, &mut peers, &mut clients);
                        break 'main;
                    }
                };
                outputs.extend(host.handle(event, &mut peers));
                drained += 1;
            }
        }
        host.finish_batch(outputs, &mut peers, &mut clients);
    }
}
