//! Transport-level fault injection: the [`FaultPlan`].
//!
//! The chaos plane needs faults *below* the protocols — dropped, delayed,
//! reordered and duplicated frames, and network partitions — while the
//! protocols above keep running unmodified. A [`FaultPlan`] is a shared
//! decision table consulted on the send path of every peer link: the TCP
//! runtime checks it in [`PeerOutbox::enqueue`] (so protocol traffic and
//! state transfer are faulted alike) and the in-process
//! [`ThreadedCluster`] checks it when routing outputs, giving both
//! runtimes the same fault semantics.
//!
//! # Determinism
//!
//! Decisions are a pure function of `(seed, from, to, position)`, where
//! `position` is the per-ordered-pair frame counter. Two runs that offer
//! the same traffic sequence on a link get the same drop/delay/duplicate
//! verdicts regardless of how other links interleave — there is no
//! shared RNG whose draws threads could race for. Partitions sit in
//! front of the rule stream and do not consume positions, so opening and
//! healing a cut leaves the link's remaining decision stream intact.
//!
//! # Runtime control
//!
//! Plans are mutable while the node runs: a socket runtime launched
//! with fault injection enabled (`TcpNodeConfig::fault_injection`, the
//! `--enable-fault-injection` serve flag) accepts [`FaultCommand`]
//! frames (kind [`frame_kind::FAULT_CONTROL`]) on any inbound
//! connection and applies them directly, so an orchestrator can open a
//! partition mid-schedule with [`send_fault_command`] and heal it
//! later. The control frame is unauthenticated test tooling — exactly
//! like the process-kill side of the chaos plane — so the flag is off
//! by default and a node without it *closes* any connection that sends
//! a control frame, keeping the plan unreachable in a real deployment.
//!
//! [`PeerOutbox::enqueue`]: crate::transport::PeerOutbox::enqueue
//! [`ThreadedCluster`]: crate::runtime::ThreadedCluster
//! [`frame_kind::FAULT_CONTROL`]: crate::transport::frame_kind::FAULT_CONTROL

use crate::transport::{frame_kind, write_value};
use splitbft_types::fault::{FaultCommand, LinkRule};
use splitbft_types::{ClientId, ReplicaId};
use std::collections::{BTreeSet, HashMap};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The verdict for one frame offered on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Discard the frame.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Hold the frame back for the given duration before delivering —
    /// frames offered later overtake it, which is how reordering is
    /// produced.
    DeliverAfter(Duration),
}

/// A named cut between two replica sets (see [`FaultCommand::Partition`]).
#[derive(Debug)]
struct NamedPartition {
    name: String,
    side_a: BTreeSet<ReplicaId>,
    side_b: BTreeSet<ReplicaId>,
    symmetric: bool,
}

impl NamedPartition {
    fn blocks(&self, from: ReplicaId, to: ReplicaId) -> bool {
        (self.side_a.contains(&from) && self.side_b.contains(&to))
            || (self.symmetric && self.side_a.contains(&to) && self.side_b.contains(&from))
    }
}

#[derive(Debug, Default)]
struct PlanState {
    rules: HashMap<(ReplicaId, ReplicaId), LinkRule>,
    partitions: Vec<NamedPartition>,
    /// Per-ordered-pair frame counters: the position term of the
    /// deterministic decision function.
    counters: HashMap<(ReplicaId, ReplicaId), u64>,
}

/// A seeded, runtime-mutable fault decision table for peer links.
///
/// Cheap when idle: a single relaxed atomic load answers "no faults
/// configured", which is the permanent state of production nodes.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Fast path: `false` whenever no rules and no partitions exist.
    active: AtomicBool,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// An empty plan (delivers everything) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, active: AtomicBool::new(false), state: Mutex::new(PlanState::default()) }
    }

    /// An empty plan behind an `Arc`, ready to share with a runtime.
    pub fn shared(seed: u64) -> Arc<Self> {
        Arc::new(Self::new(seed))
    }

    /// `true` while at least one rule or partition is installed.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Applies one control command (see [`FaultCommand`]).
    pub fn apply(&self, cmd: FaultCommand) {
        let mut state = self.state.lock().expect("fault plan state");
        match cmd {
            FaultCommand::SetRule(rule) => {
                state.rules.insert((rule.from, rule.to), rule);
            }
            FaultCommand::ClearRules => state.rules.clear(),
            FaultCommand::Partition { name, side_a, side_b, symmetric } => {
                // Re-declaring a name replaces the old cut.
                state.partitions.retain(|p| p.name != name);
                state.partitions.push(NamedPartition {
                    name,
                    side_a: side_a.into_iter().collect(),
                    side_b: side_b.into_iter().collect(),
                    symmetric,
                });
            }
            FaultCommand::Heal { name } => state.partitions.retain(|p| p.name != name),
            FaultCommand::HealAll => {
                state.partitions.clear();
                state.rules.clear();
                state.counters.clear();
            }
        }
        let active = !state.rules.is_empty() || !state.partitions.is_empty();
        self.active.store(active, Ordering::Relaxed);
    }

    /// Decides the fate of the next frame on the ordered link
    /// `from → to`, advancing that link's decision stream by one
    /// position (unless only a partition applies — cuts don't consume
    /// positions).
    pub fn decide(&self, from: ReplicaId, to: ReplicaId) -> FaultDecision {
        if !self.active.load(Ordering::Relaxed) {
            return FaultDecision::Deliver;
        }
        let mut state = self.state.lock().expect("fault plan state");
        if state.partitions.iter().any(|p| p.blocks(from, to)) {
            return FaultDecision::Drop;
        }
        let Some(rule) = state.rules.get(&(from, to)).copied() else {
            return FaultDecision::Deliver;
        };
        let position = {
            let counter = state.counters.entry((from, to)).or_insert(0);
            let position = *counter;
            *counter += 1;
            position
        };
        let roll = splitmix64(self.seed ^ pair_key(from, to) ^ position);
        let pct = (roll % 100) as u8;
        let delay = Duration::from_millis(u64::from(rule.delay_ms.max(1)));
        // One roll, partitioned into [drop | duplicate | reorder | rest]:
        // the categories are mutually exclusive per frame.
        let drop_end = rule.drop_percent.min(100);
        let dup_end = drop_end.saturating_add(rule.duplicate_percent);
        let reorder_end = dup_end.saturating_add(rule.reorder_percent);
        if pct < drop_end {
            FaultDecision::Drop
        } else if pct < dup_end {
            FaultDecision::Duplicate
        } else if pct < reorder_end {
            FaultDecision::DeliverAfter(delay)
        } else if rule.reorder_percent == 0 && rule.delay_ms > 0 {
            // Pure-delay rule: uniform extra latency on every frame.
            FaultDecision::DeliverAfter(delay)
        } else {
            FaultDecision::Deliver
        }
    }
}

/// Mixes an ordered replica pair into the decision hash.
fn pair_key(from: ReplicaId, to: ReplicaId) -> u64 {
    (u64::from(from.0) << 32) | u64::from(to.0).rotate_left(17)
}

/// SplitMix64: a well-distributed 64-bit mixer, used here as a counter
/// hash so every link position gets an independent uniform roll.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Client id announced by fault-control connections. Reserved: real
/// clients and the loadgen/probe lanes all use small ids.
pub const FAULT_CONTROL_CLIENT: ClientId = ClientId(u32::MAX);

/// Sends one [`FaultCommand`] to the replica listening at `addr`.
///
/// Opens a throwaway client connection, pushes the control frame, and
/// returns once the bytes are handed to the kernel. Delivery is
/// fire-and-forget (there is no ack lane); schedules follow control
/// commands with a settle sleep.
///
/// # Errors
///
/// Connection or write failures — e.g. the replica is down.
pub fn send_fault_command(addr: SocketAddr, cmd: &FaultCommand) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_value(&mut stream, frame_kind::CLIENT_HELLO, &FAULT_CONTROL_CLIENT)?;
    write_value(&mut stream, frame_kind::FAULT_CONTROL, cmd)?;
    stream.flush()
}

/// Sends one [`FaultCommand`] to *every* replica in `addrs`.
///
/// Partitions only hold when both sides enforce them, so the command
/// goes to all nodes even if some sends fail (a dead replica enforces
/// any partition trivially).
///
/// # Errors
///
/// The first send error, after attempting every address.
pub fn broadcast_fault_command(addrs: &[SocketAddr], cmd: &FaultCommand) -> io::Result<()> {
    let mut first_err = None;
    for &addr in addrs {
        if let Err(e) = send_fault_command(addr, cmd) {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(from: u32, to: u32, drop: u8, dup: u8, reorder: u8, delay_ms: u32) -> FaultCommand {
        FaultCommand::SetRule(LinkRule {
            from: ReplicaId(from),
            to: ReplicaId(to),
            drop_percent: drop,
            duplicate_percent: dup,
            reorder_percent: reorder,
            delay_ms,
        })
    }

    #[test]
    fn empty_plan_delivers_everything() {
        let plan = FaultPlan::new(7);
        assert!(!plan.is_active());
        for _ in 0..100 {
            assert_eq!(plan.decide(ReplicaId(0), ReplicaId(1)), FaultDecision::Deliver);
        }
    }

    #[test]
    fn rules_only_affect_their_own_link() {
        let plan = FaultPlan::new(7);
        plan.apply(rule(0, 1, 100, 0, 0, 0));
        assert_eq!(plan.decide(ReplicaId(0), ReplicaId(1)), FaultDecision::Drop);
        // Reverse direction and unrelated links are untouched.
        assert_eq!(plan.decide(ReplicaId(1), ReplicaId(0)), FaultDecision::Deliver);
        assert_eq!(plan.decide(ReplicaId(2), ReplicaId(3)), FaultDecision::Deliver);
    }

    #[test]
    fn symmetric_partition_blocks_both_directions() {
        let plan = FaultPlan::new(1);
        plan.apply(FaultCommand::Partition {
            name: "cut".into(),
            side_a: vec![ReplicaId(0)],
            side_b: vec![ReplicaId(1), ReplicaId(2)],
            symmetric: true,
        });
        assert_eq!(plan.decide(ReplicaId(0), ReplicaId(1)), FaultDecision::Drop);
        assert_eq!(plan.decide(ReplicaId(2), ReplicaId(0)), FaultDecision::Drop);
        // Links within one side are unaffected.
        assert_eq!(plan.decide(ReplicaId(1), ReplicaId(2)), FaultDecision::Deliver);
        plan.apply(FaultCommand::Heal { name: "cut".into() });
        assert!(!plan.is_active());
        assert_eq!(plan.decide(ReplicaId(0), ReplicaId(1)), FaultDecision::Deliver);
    }

    #[test]
    fn asymmetric_partition_blocks_one_direction() {
        let plan = FaultPlan::new(1);
        plan.apply(FaultCommand::Partition {
            name: "one-way".into(),
            side_a: vec![ReplicaId(2)],
            side_b: vec![ReplicaId(3)],
            symmetric: false,
        });
        assert_eq!(plan.decide(ReplicaId(2), ReplicaId(3)), FaultDecision::Drop);
        assert_eq!(plan.decide(ReplicaId(3), ReplicaId(2)), FaultDecision::Deliver);
    }

    #[test]
    fn pure_delay_rule_delays_every_frame() {
        let plan = FaultPlan::new(3);
        plan.apply(rule(0, 1, 0, 0, 0, 40));
        for _ in 0..20 {
            assert_eq!(
                plan.decide(ReplicaId(0), ReplicaId(1)),
                FaultDecision::DeliverAfter(Duration::from_millis(40))
            );
        }
    }

    #[test]
    fn decision_stream_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<FaultDecision> {
            let plan = FaultPlan::new(seed);
            plan.apply(rule(0, 1, 30, 10, 10, 5));
            (0..200).map(|_| plan.decide(ReplicaId(0), ReplicaId(1))).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same verdicts");
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn partitions_do_not_consume_rule_positions() {
        // Reference stream with no partition interference.
        let reference = {
            let plan = FaultPlan::new(9);
            plan.apply(rule(0, 1, 50, 0, 0, 0));
            (0..50).map(|_| plan.decide(ReplicaId(0), ReplicaId(1))).collect::<Vec<_>>()
        };
        // Same rule, but a partition blocks the middle 50 offers; after
        // the heal the stream continues where it left off.
        let plan = FaultPlan::new(9);
        plan.apply(rule(0, 1, 50, 0, 0, 0));
        let mut observed: Vec<FaultDecision> =
            (0..25).map(|_| plan.decide(ReplicaId(0), ReplicaId(1))).collect();
        plan.apply(FaultCommand::Partition {
            name: "mid".into(),
            side_a: vec![ReplicaId(0)],
            side_b: vec![ReplicaId(1)],
            symmetric: true,
        });
        for _ in 0..50 {
            assert_eq!(plan.decide(ReplicaId(0), ReplicaId(1)), FaultDecision::Drop);
        }
        plan.apply(FaultCommand::Heal { name: "mid".into() });
        observed.extend((0..25).map(|_| plan.decide(ReplicaId(0), ReplicaId(1))));
        assert_eq!(observed, reference);
    }

    #[test]
    fn heal_all_restores_clean_delivery() {
        let plan = FaultPlan::new(5);
        plan.apply(rule(0, 1, 100, 0, 0, 0));
        plan.apply(FaultCommand::Partition {
            name: "x".into(),
            side_a: vec![ReplicaId(2)],
            side_b: vec![ReplicaId(3)],
            symmetric: true,
        });
        plan.apply(FaultCommand::HealAll);
        assert!(!plan.is_active());
        assert_eq!(plan.decide(ReplicaId(0), ReplicaId(1)), FaultDecision::Deliver);
        assert_eq!(plan.decide(ReplicaId(2), ReplicaId(3)), FaultDecision::Deliver);
    }
}
