//! Per-request reply-quorum tracking for pipelined clients.
//!
//! The protocol crates' client state machines (`PbftClient`,
//! `SplitBftClient`, `HybridClient`) are lock-step: one in-flight
//! request, `issue` panics otherwise. Pipelined load generation needs
//! the same acceptance rule — `f + 1` MAC-verified matching replies
//! from distinct replicas — but *per request*, many at a time. All
//! three protocols share that rule (they differ only in `n` and
//! therefore `f`), so one tracker serves every stack.

use bytes::Bytes;
use splitbft_crypto::hmac::ct_eq;
use splitbft_crypto::MacKey;
use splitbft_types::{ReplicaId, Reply};
use std::collections::BTreeMap;

/// Collects replies for one request until a quorum of matching results
/// from distinct replicas is reached.
#[derive(Debug, Clone)]
pub struct QuorumTracker {
    mac: MacKey,
    quorum: usize,
    replies: BTreeMap<ReplicaId, Bytes>,
}

impl QuorumTracker {
    /// A tracker accepting on `quorum` (`f + 1`) matching replies,
    /// verifying authenticity under the client's `mac` key.
    pub fn new(mac: MacKey, quorum: usize) -> Self {
        QuorumTracker { mac, quorum: quorum.max(1), replies: BTreeMap::new() }
    }

    /// Delivers one reply; returns the agreed result once `quorum`
    /// verified replies from distinct replicas match. Forged replies
    /// (bad MAC) are ignored; a replica re-sending overwrites its own
    /// earlier vote, so duplicates never double-count.
    pub fn on_reply(&mut self, reply: &Reply) -> Option<Bytes> {
        let expected = self.mac.tag(&Reply::auth_bytes(
            reply.view,
            reply.request,
            reply.replica,
            &reply.result,
            reply.encrypted,
        ));
        if !ct_eq(&expected, &reply.auth) {
            return None;
        }
        self.replies.insert(reply.replica, reply.result.clone());

        let mut counts: BTreeMap<&[u8], usize> = BTreeMap::new();
        for result in self.replies.values() {
            let n = counts.entry(result.as_ref()).or_insert(0);
            *n += 1;
            if *n >= self.quorum {
                return Some(Bytes::copy_from_slice(result));
            }
        }
        None
    }
}

/// A cross-client commit log that turns quorum completions into a
/// *safety* check.
///
/// The counter application's `inc` returns the post-increment value, so
/// each committed `inc` observes a distinct execution-order slot: the
/// result bytes identify the slot. If two *different* requests each
/// reach an `f + 1` MAC-verified quorum claiming the same slot, two
/// divergent histories both executed that position — a consensus fork
/// observable at honest clients. Chaos probes share one `CommitLog`
/// across all their clients and record every completion; a
/// [`CommitConflict`] is the safety violation the paper's agreement
/// property forbids.
#[derive(Debug, Default)]
pub struct CommitLog {
    by_result: BTreeMap<Vec<u8>, splitbft_types::RequestId>,
}

/// Two distinct committed requests observed the same execution slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitConflict {
    /// The slot both requests claim (the agreed result bytes).
    pub result: Vec<u8>,
    /// The request that committed the slot first.
    pub first: splitbft_types::RequestId,
    /// The conflicting later request.
    pub second: splitbft_types::RequestId,
}

impl std::fmt::Display for CommitConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "safety violation: requests {:?} and {:?} both committed result {:02x?}",
            self.first, self.second, self.result
        )
    }
}

impl CommitLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one quorum-completed request. Re-recording the *same*
    /// request (client retransmission completing twice) is fine; a
    /// different request completing on an already-claimed slot is the
    /// fork.
    pub fn record(
        &mut self,
        request: splitbft_types::RequestId,
        result: &[u8],
    ) -> Result<(), CommitConflict> {
        match self.by_result.get(result) {
            Some(&first) if first != request => Err(CommitConflict {
                result: result.to_vec(),
                first,
                second: request,
            }),
            Some(_) => Ok(()),
            None => {
                self.by_result.insert(result.to_vec(), request);
                Ok(())
            }
        }
    }

    /// Distinct slots recorded so far.
    pub fn len(&self) -> usize {
        self.by_result.len()
    }

    /// `true` when nothing has committed yet.
    pub fn is_empty(&self) -> bool {
        self.by_result.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_crypto::client_mac_key;
    use splitbft_types::{ClientId, RequestId, Timestamp, View};

    const SEED: u64 = 11;

    fn reply(request: RequestId, replica: u32, result: &'static [u8], seed: u64) -> Reply {
        let mac = client_mac_key(seed, request.client);
        let result = Bytes::from_static(result);
        let auth =
            mac.tag(&Reply::auth_bytes(View(0), request, ReplicaId(replica), &result, false));
        Reply { view: View(0), request, replica: ReplicaId(replica), result, encrypted: false, auth }
    }

    fn request_id() -> RequestId {
        RequestId { client: ClientId(5), timestamp: Timestamp(9) }
    }

    #[test]
    fn completes_on_quorum_of_matching() {
        let id = request_id();
        let mut t = QuorumTracker::new(client_mac_key(SEED, id.client), 2);
        assert_eq!(t.on_reply(&reply(id, 0, b"ok", SEED)), None);
        assert_eq!(t.on_reply(&reply(id, 1, b"ok", SEED)), Some(Bytes::from_static(b"ok")));
    }

    #[test]
    fn conflicting_results_need_matching_quorum() {
        let id = request_id();
        let mut t = QuorumTracker::new(client_mac_key(SEED, id.client), 2);
        assert_eq!(t.on_reply(&reply(id, 0, b"a", SEED)), None);
        assert_eq!(t.on_reply(&reply(id, 1, b"b", SEED)), None);
        assert_eq!(t.on_reply(&reply(id, 2, b"a", SEED)), Some(Bytes::from_static(b"a")));
    }

    #[test]
    fn duplicates_and_forgeries_do_not_count() {
        let id = request_id();
        let mut t = QuorumTracker::new(client_mac_key(SEED, id.client), 2);
        assert_eq!(t.on_reply(&reply(id, 0, b"ok", SEED)), None);
        // Same replica again: still one vote.
        assert_eq!(t.on_reply(&reply(id, 0, b"ok", SEED)), None);
        // MACed under the wrong key: ignored entirely.
        assert_eq!(t.on_reply(&reply(id, 1, b"ok", SEED + 1)), None);
        assert_eq!(t.on_reply(&reply(id, 1, b"ok", SEED)), Some(Bytes::from_static(b"ok")));
    }

    #[test]
    fn commit_log_flags_distinct_requests_on_one_slot() {
        let mut log = CommitLog::new();
        let a = RequestId { client: ClientId(1), timestamp: Timestamp(1) };
        let b = RequestId { client: ClientId(2), timestamp: Timestamp(1) };
        log.record(a, b"7").unwrap();
        // The same request completing again (retransmission) is benign.
        log.record(a, b"7").unwrap();
        // A different slot is benign.
        log.record(b, b"8").unwrap();
        assert_eq!(log.len(), 2);
        // A different request claiming a taken slot is the fork.
        let conflict = log.record(b, b"7").unwrap_err();
        assert_eq!(conflict.first, a);
        assert_eq!(conflict.second, b);
        assert_eq!(conflict.result, b"7".to_vec());
    }
}
