//! Closed- and open-loop workload drivers.
//!
//! A driver runs `clients` concurrent client threads against a deployed
//! cluster. Each thread owns one [`PipelinedTcpClient`] connection
//! fan-out and keeps up to `pipeline` requests outstanding (closed
//! loop), or issues on a fixed schedule regardless of completions (open
//! loop, the offered-load mode that reveals saturation). Completion —
//! `f + 1` MAC-verified matching replies — is detected per request by a
//! [`QuorumTracker`] running on the connection's dispatcher thread;
//! latencies land in a per-thread [`LatencyHistogram`] and are merged
//! when the run ends.
//!
//! Retransmission follows the PBFT client rule: a request outstanding
//! longer than `retry_every` is re-broadcast to every reachable replica
//! (replicas that executed it answer from their reply cache). After the
//! measurement window the driver drains: it stops issuing and waits up
//! to `drain_timeout` for stragglers, counting whatever never completes
//! as timed out.

use crate::hist::{LatencyHistogram, Windows};
use crate::quorum::QuorumTracker;
use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitbft_crypto::client_mac_key;
use splitbft_net::tcp::PipelinedTcpClient;
use splitbft_types::{ClientId, Reply, Request, RequestId, Timestamp};
use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How load is offered to the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Each client keeps `pipeline` requests outstanding and issues a
    /// new one the moment one completes: measures peak sustainable
    /// throughput at bounded concurrency.
    Closed,
    /// Requests are issued at a fixed aggregate rate across all clients
    /// regardless of completions: measures latency at a chosen offered
    /// load (and exposes saturation when the cluster falls behind).
    Open {
        /// Aggregate offered load, requests per second.
        rate: f64,
    },
}

/// Configuration for one load-generation run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Replica addresses in id order (index 0 is the view-0 primary).
    pub addrs: Vec<SocketAddr>,
    /// The cluster's master seed (request/reply MAC keys derive from it).
    pub master_seed: u64,
    /// Matching replies needed to accept a result (`f + 1`).
    pub reply_quorum: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Outstanding requests per client (closed loop).
    pub pipeline: usize,
    /// Length of the measurement window.
    pub duration: Duration,
    /// Closed or open (fixed-rate) loop.
    pub mode: LoadMode,
    /// The operation stream.
    pub workload: Workload,
    /// Window length of the throughput series.
    pub window: Duration,
    /// Re-broadcast requests outstanding longer than this.
    pub retry_every: Duration,
    /// After the measurement window, wait at most this long for
    /// stragglers before counting them as timed out.
    pub drain_timeout: Duration,
    /// Connection-establishment budget per client.
    pub connect_timeout: Duration,
    /// First client id; client `i` uses `client_id_base + i`.
    pub client_id_base: u32,
    /// Address-book index requests are first submitted to (the view-0
    /// primary by default). A wrong guess still completes through the
    /// retry broadcast, just slower. An **out-of-range** index (e.g.
    /// `usize::MAX`) broadcasts every submission to all reachable
    /// replicas — the leadership-agnostic mode chaos/failover harnesses
    /// use when view changes move the primary mid-run.
    pub primary_index: usize,
    /// Consensus groups the target cluster hosts. Above one, KVS key
    /// generation cycles the shards round-robin
    /// ([`Workload::next_op_sharded`]) and completions are tracked per
    /// shard in [`LoadStats::per_shard_completed`]. The default `1`
    /// generates exactly the pre-sharding stream.
    pub shards: u32,
}

impl DriverConfig {
    /// A closed-loop config with the defaults benchmarks start from.
    pub fn new(addrs: Vec<SocketAddr>, master_seed: u64, reply_quorum: usize) -> Self {
        DriverConfig {
            addrs,
            master_seed,
            reply_quorum,
            clients: 4,
            pipeline: 1,
            duration: Duration::from_secs(5),
            mode: LoadMode::Closed,
            workload: Workload::Counter,
            window: Duration::from_secs(1),
            retry_every: Duration::from_secs(1),
            drain_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(10),
            client_id_base: 1_000,
            primary_index: 0,
            shards: 1,
        }
    }
}

/// What one run measured, aggregated across all client threads.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Requests issued inside the measurement window.
    pub issued: u64,
    /// Requests that reached a verified reply quorum (client-observed
    /// completions == committed requests the clients can prove).
    pub completed: u64,
    /// Requests still incomplete when the drain window closed.
    pub timed_out: u64,
    /// Wall time of the whole run including connect and drain.
    pub elapsed: Duration,
    /// Completion latencies.
    pub hist: LatencyHistogram,
    /// Completions per window since the measurement started.
    pub windows: Windows,
    /// Completions per shard (`config.shards` entries; a single entry
    /// for unsharded runs). The per-shard quorum trackers feeding this
    /// are the client-side proof that every consensus group committed
    /// its slice of the load.
    pub per_shard_completed: Vec<u64>,
}

/// Runs one load-generation session. Returns once every client thread
/// finished (measurement window plus drain).
///
/// # Errors
///
/// `InvalidInput` for a zero-client or zero-duration config; connection
/// errors if a client cannot reach any replica.
pub fn run(config: &DriverConfig) -> io::Result<LoadStats> {
    if config.clients == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "need at least one client"));
    }
    if config.duration.is_zero() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "duration must be positive"));
    }
    if let LoadMode::Open { rate } = config.mode {
        if !(rate > 0.0) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "open-loop rate must be > 0"));
        }
    }
    let started = Instant::now();
    let results: Vec<io::Result<ClientStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|index| scope.spawn(move || client_loop(config, index)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });

    let shards = config.shards.max(1) as usize;
    let mut stats = LoadStats {
        issued: 0,
        completed: 0,
        timed_out: 0,
        elapsed: started.elapsed(),
        hist: LatencyHistogram::new(),
        windows: Windows::new(config.window),
        per_shard_completed: vec![0; shards],
    };
    for result in results {
        let client = result?;
        stats.issued += client.issued;
        stats.completed += client.completed;
        stats.timed_out += client.timed_out;
        stats.hist.merge(&client.hist);
        stats.windows.merge(&client.windows);
        for (total, &count) in
            stats.per_shard_completed.iter_mut().zip(&client.per_shard_completed)
        {
            *total += count;
        }
    }
    Ok(stats)
}

struct ClientStats {
    issued: u64,
    completed: u64,
    timed_out: u64,
    hist: LatencyHistogram,
    windows: Windows,
    per_shard_completed: Vec<u64>,
}

struct Flight {
    request: Request,
    last_sent: Instant,
}

fn client_loop(config: &DriverConfig, index: usize) -> io::Result<ClientStats> {
    let client = ClientId(config.client_id_base + index as u32);
    let mac = client_mac_key(config.master_seed, client);
    let mut rng = StdRng::seed_from_u64(
        config.master_seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1),
    );
    let mut tcp = PipelinedTcpClient::connect(client, &config.addrs, config.connect_timeout)?;

    // Wall-clock timestamps: replicas dedupe requests by each client's
    // last-seen timestamp, so a rerun reusing an id must start above
    // everything it ever issued.
    let mut next_ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(1)
        .max(1);

    // Completions cross from the dispatcher thread back to this one:
    // (timestamp, owning shard, latency, elapsed-since-start).
    let (done_tx, done_rx) = channel::<(u64, u32, Duration, Duration)>();

    let pipeline = config.pipeline.max(1);
    let start = Instant::now();
    let deadline = start + config.duration;
    let hard_stop = deadline + config.drain_timeout;
    // Open loop: this client covers every `period`, staggered so the
    // aggregate stream is evenly spaced, not `clients`-sized bursts.
    let open_period = match config.mode {
        LoadMode::Closed => None,
        LoadMode::Open { rate } => {
            Some(Duration::from_secs_f64(config.clients as f64 / rate))
        }
    };
    let mut next_issue =
        start + open_period.map_or(Duration::ZERO, |p| p.mul_f64(index as f64 / config.clients as f64));

    let mut stats = ClientStats {
        issued: 0,
        completed: 0,
        timed_out: 0,
        hist: LatencyHistogram::new(),
        windows: Windows::new(config.window),
        per_shard_completed: vec![0; config.shards.max(1) as usize],
    };
    let mut inflight: BTreeMap<u64, Flight> = BTreeMap::new();

    // Builds one authenticated request plus its quorum-tracking
    // completion handler; `issue_all` below coalesces any number of
    // them into a single REQUESTS frame (client-side batching — the
    // mirror of the replicas' send-path batching).
    let mut build = |sequence: u64| -> (Request, splitbft_net::tcp::ReplyHandler) {
        let timestamp = Timestamp(next_ts);
        next_ts += 1;
        let (op, shard) = config.workload.next_op_sharded(&mut rng, sequence, config.shards);
        let id = RequestId { client, timestamp };
        let auth = mac.tag(&Request::auth_bytes(id, &op, false));
        let request = Request { id, op, encrypted: false, auth };

        let mut tracker = QuorumTracker::new(mac.clone(), config.reply_quorum);
        let issued_at = Instant::now();
        let done = done_tx.clone();
        let handler = Box::new(move |reply: &Reply| {
            if tracker.on_reply(reply).is_some() {
                let _ = done.send((
                    reply.request.timestamp.0,
                    shard.0,
                    issued_at.elapsed(),
                    start.elapsed(),
                ));
                true
            } else {
                false
            }
        });
        (request, handler)
    };

    let mut issue_all = |count: usize,
                         tcp: &mut PipelinedTcpClient,
                         inflight: &mut BTreeMap<u64, Flight>,
                         stats: &mut ClientStats|
     -> io::Result<()> {
        if count == 0 {
            return Ok(());
        }
        let mut batch = Vec::with_capacity(count);
        for offset in 0..count {
            // Each request in the coalesced frame keeps its own
            // workload sequence number (blockchain ops embed it to stay
            // distinct).
            batch.push(build(stats.issued + offset as u64));
        }
        let issued_at = Instant::now();
        let flights: Vec<(u64, Flight)> = batch
            .iter()
            .map(|(request, _)| {
                (request.id.timestamp.0, Flight { request: request.clone(), last_sent: issued_at })
            })
            .collect();
        tcp.submit_batch(config.primary_index, batch)?;
        for (ts, flight) in flights {
            inflight.insert(ts, flight);
        }
        stats.issued += count as u64;
        Ok(())
    };

    loop {
        // Issue phase: everything due right now goes out in one frame.
        match open_period {
            None => {
                if Instant::now() < deadline {
                    let want = pipeline.saturating_sub(inflight.len());
                    issue_all(want, &mut tcp, &mut inflight, &mut stats)?;
                }
            }
            Some(period) => {
                let mut due = 0;
                while next_issue <= Instant::now() && Instant::now() < deadline {
                    due += 1;
                    next_issue += period;
                }
                issue_all(due, &mut tcp, &mut inflight, &mut stats)?;
            }
        }

        let now = Instant::now();
        if inflight.is_empty() && now >= deadline {
            break;
        }
        if now >= hard_stop {
            // Completions already queued on the channel are real — drain
            // them before declaring the remainder timed out.
            while let Ok(completion) = done_rx.try_recv() {
                record_completion(completion, &mut inflight, &mut stats);
            }
            for flight in inflight.values() {
                tcp.cancel(flight.request.id);
            }
            stats.timed_out += inflight.len() as u64;
            inflight.clear();
            break;
        }

        // Wait for the next completion (bounded so retransmission and
        // open-loop scheduling stay responsive).
        let mut wait = Duration::from_millis(20).min(hard_stop - now);
        if open_period.is_some() && now < deadline {
            wait = wait.min(next_issue.saturating_duration_since(now));
        }
        match done_rx.recv_timeout(wait.max(Duration::from_micros(200))) {
            Ok(completion) => {
                record_completion(completion, &mut inflight, &mut stats);
                // Batch up whatever else already completed.
                while let Ok(more) = done_rx.try_recv() {
                    record_completion(more, &mut inflight, &mut stats);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Retransmit stragglers (at-most-once transport: loss recovery
        // is the client's job).
        let now = Instant::now();
        for flight in inflight.values_mut() {
            if now.duration_since(flight.last_sent) >= config.retry_every {
                let _ = tcp.resend(&flight.request);
                flight.last_sent = now;
            }
        }
    }

    tcp.close();
    Ok(stats)
}

fn record_completion(
    (timestamp, shard, latency, at): (u64, u32, Duration, Duration),
    inflight: &mut BTreeMap<u64, Flight>,
    stats: &mut ClientStats,
) {
    if inflight.remove(&timestamp).is_some() {
        stats.completed += 1;
        stats.hist.record(latency);
        stats.windows.record(at);
        if let Some(count) = stats.per_shard_completed.get_mut(shard as usize) {
            *count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitbft_net::tcp::{TcpNode, TcpNodeConfig};
    use splitbft_net::transport::{Protocol, ProtocolOutput};
    use splitbft_types::{ReplicaId, View};

    /// A single-"replica" protocol that executes nothing but answers
    /// every request with a correctly MACed reply, so the quorum
    /// trackers accept with `reply_quorum = 1`. Exercises the driver
    /// without standing up a consensus cluster.
    struct MacEcho {
        id: ReplicaId,
        seed: u64,
    }

    impl Protocol for MacEcho {
        type Message = u64;

        fn on_message(&mut self, _msg: u64) -> Vec<ProtocolOutput<u64>> {
            Vec::new()
        }

        fn on_client_requests(&mut self, requests: Vec<Request>) -> Vec<ProtocolOutput<u64>> {
            requests
                .into_iter()
                .map(|r| {
                    let mac = client_mac_key(self.seed, r.client());
                    let auth = mac.tag(&Reply::auth_bytes(
                        View(0),
                        r.id,
                        self.id,
                        &r.op,
                        false,
                    ));
                    ProtocolOutput::Reply {
                        to: r.client(),
                        reply: Reply {
                            view: View(0),
                            request: r.id,
                            replica: self.id,
                            result: r.op,
                            encrypted: false,
                            auth,
                        },
                    }
                })
                .collect()
        }

        fn on_timeout(&mut self) -> Vec<ProtocolOutput<u64>> {
            Vec::new()
        }
    }

    fn echo_node(seed: u64) -> TcpNode {
        let config =
            TcpNodeConfig::new(ReplicaId(0), "127.0.0.1:0".parse().unwrap(), Vec::new());
        TcpNode::spawn(config, MacEcho { id: ReplicaId(0), seed }).unwrap()
    }

    #[test]
    fn closed_loop_measures_completions() {
        let node = echo_node(77);
        let mut config = DriverConfig::new(vec![node.local_addr()], 77, 1);
        config.clients = 2;
        config.pipeline = 4;
        config.duration = Duration::from_millis(300);
        config.window = Duration::from_millis(100);

        let stats = run(&config).unwrap();
        assert!(stats.completed > 0, "no requests completed");
        assert_eq!(stats.completed + stats.timed_out, stats.issued);
        assert_eq!(stats.hist.count(), stats.completed);
        assert_eq!(stats.windows.counts().iter().sum::<u64>(), stats.completed);
        node.shutdown();
    }

    #[test]
    fn open_loop_tracks_offered_rate() {
        let node = echo_node(78);
        let mut config = DriverConfig::new(vec![node.local_addr()], 78, 1);
        config.clients = 2;
        config.duration = Duration::from_millis(500);
        config.mode = LoadMode::Open { rate: 200.0 };
        config.window = Duration::from_millis(100);

        let stats = run(&config).unwrap();
        // 200/s over 0.5 s ≈ 100 requests; allow generous scheduling slop.
        assert!(
            (50..=140).contains(&stats.issued),
            "offered {} requests, expected ~100",
            stats.issued
        );
        assert_eq!(stats.completed + stats.timed_out, stats.issued);
        node.shutdown();
    }

    #[test]
    fn zero_clients_rejected() {
        let mut config = DriverConfig::new(vec!["127.0.0.1:1".parse().unwrap()], 1, 1);
        config.clients = 0;
        assert_eq!(run(&config).unwrap_err().kind(), io::ErrorKind::InvalidInput);
    }
}
