//! Cluster load generation and measurement — the workspace's
//! performance plane.
//!
//! The simulator (`splitbft-sim`) predicts; this crate *measures*: it
//! drives real TCP clusters of any of the three protocol stacks (PBFT,
//! SplitBFT, MinBFT-style hybrid) with many concurrent, pipelined
//! clients and reports achieved throughput, latency percentiles and a
//! per-window throughput series as `BENCH_*.json`. Every future
//! performance PR is expected to justify itself through these reports.
//!
//! # Pieces
//!
//! - [`driver`]: closed-loop (bounded outstanding per client) and
//!   open-loop (fixed offered rate) workload drivers over
//!   `splitbft-net`'s pipelined TCP client.
//! - [`workload`]: operation generators for the counter, key-value
//!   store (keyspace / value-size / read-ratio knobs) and blockchain
//!   applications.
//! - [`quorum`]: per-request `f + 1` MAC-verified reply-quorum
//!   tracking — the acceptance rule all three protocols share, freed
//!   from the lock-step client state machines.
//! - [`hist`]: allocation-light log-bucketed latency histogram and
//!   windowed throughput tracking.
//! - [`report`]: the `BENCH_<name>.json` schema and writer.
//!
//! The `splitbft-node bench` subcommand is the command-line entry
//! point: it self-orchestrates a localhost cluster (or targets an
//! existing cluster file) and feeds this crate's driver.
//!
//! # Example
//!
//! ```no_run
//! use splitbft_loadgen::driver::{self, DriverConfig, LoadMode};
//! use splitbft_loadgen::workload::Workload;
//! use std::time::Duration;
//!
//! let addrs = vec!["127.0.0.1:7100".parse().unwrap()];
//! let mut config = DriverConfig::new(addrs, 42, 2);
//! config.clients = 8;
//! config.pipeline = 4;
//! config.duration = Duration::from_secs(5);
//! config.workload = Workload::paper_kvs();
//! config.mode = LoadMode::Closed;
//! let stats = driver::run(&config).unwrap();
//! println!("{} completions", stats.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod hist;
pub mod quorum;
pub mod report;
pub mod workload;

pub use driver::{DriverConfig, LoadMode, LoadStats};
pub use hist::{LatencyHistogram, Windows};
pub use quorum::{CommitConflict, CommitLog, QuorumTracker};
pub use report::{BatchSummary, BenchReport, DurabilitySummary, LatencySummary};
pub use workload::Workload;
