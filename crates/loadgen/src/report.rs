//! `BENCH_*.json` report writing.
//!
//! Every measurement run serializes into one self-describing JSON file
//! named `BENCH_<name>.json`, so CI can archive reports as artifacts
//! and future performance PRs diff against them. The schema (version
//! `splitbft-bench/v1`) is stable and hand-rolled — the workspace has
//! no serde — with every key documented on [`BenchReport`]'s fields.

use crate::driver::{LoadMode, LoadStats};
use crate::workload::Workload;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "splitbft-bench/v1";

/// Latency percentiles of one run, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Largest observed.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

/// The send-path batching policy a run used (mirrors
/// `splitbft_net::transport::BatchPolicy`, flattened for the report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSummary {
    /// Frames coalesced per write at most.
    pub max_frames: usize,
    /// Bytes coalesced per write at most.
    pub max_bytes: usize,
    /// Flush interval in microseconds (0 = flush when the queue is dry).
    pub linger_us: u64,
}

/// What the durability plane cost during a run (only measurable for
/// self-orchestrated clusters, whose in-process nodes expose fsync
/// gauges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilitySummary {
    /// The WAL group-commit linger the replicas ran with
    /// (`0` = one fsync per drained event).
    pub wal_group_commit_us: u64,
    /// Total WAL fsyncs across all replicas during the run.
    pub fsyncs: u64,
    /// Fsyncs per client-verified completion (`None` with zero
    /// completions). The number group-commit exists to shrink.
    pub fsyncs_per_completed: Option<f64>,
}

/// What the sharding plane delivered during a run (only attached to
/// multi-shard runs — a single-shard report stays byte-identical to the
/// pre-sharding schema, so the key is omitted rather than `null`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingSummary {
    /// Consensus groups the cluster hosted.
    pub shards: u32,
    /// Client-verified completions per shard (from the per-shard quorum
    /// trackers).
    pub per_shard_completed: Vec<u64>,
    /// Execution progress per shard as reported by the replicas' gauges
    /// (element-wise max across replicas).
    pub per_shard_progress: Vec<u64>,
    /// WAL fsyncs per shard summed across replicas (`0`s without a data
    /// dir).
    pub per_shard_fsyncs: Vec<u64>,
    /// Throughput of the single-shard baseline run the same invocation
    /// measured first (`None` when no baseline ran, e.g. external
    /// clusters).
    pub baseline_rps: Option<f64>,
    /// `throughput_rps / baseline_rps` — the scaling factor the shard
    /// count bought.
    pub scaling_x: Option<f64>,
}

impl ShardingSummary {
    /// The section as a JSON object.
    pub fn to_json(&self) -> String {
        let join = |v: &[u64]| {
            v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
        };
        format!(
            r#"{{"shards": {}, "per_shard_completed": [{}], "per_shard_progress": [{}], "per_shard_fsyncs": [{}], "baseline_rps": {}, "scaling_x": {}}}"#,
            self.shards,
            join(&self.per_shard_completed),
            join(&self.per_shard_progress),
            join(&self.per_shard_fsyncs),
            self.baseline_rps.map_or("null".into(), |v| format!("{v:.3}")),
            self.scaling_x.map_or("null".into(), |v| format!("{v:.3}")),
        )
    }
}

/// The cluster's final telemetry snapshot, summed across replicas
/// (only measurable for self-orchestrated clusters, whose in-process
/// nodes expose their metrics registries). Attached as the report's
/// `metrics` section so a `BENCH_*.json` is self-contained: the
/// observability story of the run travels with its numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Total WAL fsyncs across every replica (`0` without a data dir).
    pub fsyncs: u64,
    /// Evented-backend outbound-ring refusals across every replica
    /// (`0` on the blocking backend, which blocks instead of refusing).
    pub ring_refusals: u64,
    /// Peer reconnect attempts across every replica.
    pub reconnects: u64,
    /// Largest per-node inbound queue depth observed (max across
    /// replicas, not a sum — depths don't add meaningfully).
    pub queue_depth_high_water: u64,
    /// Bytes received from peers across every replica.
    pub bytes_in: u64,
    /// Bytes sent to peers across every replica.
    pub bytes_out: u64,
}

impl MetricsSummary {
    /// The section as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"fsyncs": {}, "ring_refusals": {}, "reconnects": {}, "queue_depth_high_water": {}, "bytes_in": {}, "bytes_out": {}}}"#,
            self.fsyncs,
            self.ring_refusals,
            self.reconnects,
            self.queue_depth_high_water,
            self.bytes_in,
            self.bytes_out,
        )
    }
}

/// One complete measurement: configuration, counts, latency
/// percentiles, and the per-window throughput series.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Report name; the file is `BENCH_<name>.json`.
    pub name: String,
    /// Protocol under test (`pbft`, `splitbft`, `minbft`).
    pub protocol: String,
    /// Cluster size.
    pub n: usize,
    /// Fault tolerance of that size.
    pub f: usize,
    /// Replicated application (`counter`, `kvs`, `blockchain`).
    pub app: String,
    /// Workload generator knobs.
    pub workload: Workload,
    /// Closed or open loop (open carries the offered rate).
    pub mode: LoadMode,
    /// Concurrent clients.
    pub clients: usize,
    /// Outstanding requests per client.
    pub pipeline: usize,
    /// Measurement window length.
    pub duration: Duration,
    /// Send-path batching policy.
    pub batch: BatchSummary,
    /// Requests issued.
    pub issued: u64,
    /// Client-observed completions (verified reply quorums).
    pub completed: u64,
    /// Requests that never completed within the drain window.
    pub timed_out: u64,
    /// Committed requests as observed on the cluster side (for counter
    /// workloads, the final counter value probed after the run); equals
    /// `completed` when no independent probe exists for the workload.
    pub committed: u64,
    /// Achieved throughput: completions per second of measurement window.
    pub throughput_rps: f64,
    /// Latency percentiles.
    pub latency: LatencySummary,
    /// Window length of the series below.
    pub window: Duration,
    /// Completions per window.
    pub window_counts: Vec<u64>,
    /// Durability-plane cost, when the run could measure it (`null` in
    /// the JSON otherwise).
    pub durability: Option<DurabilitySummary>,
    /// Sharding-plane measurement, attached only to multi-shard runs
    /// (the key is omitted from the JSON otherwise, keeping
    /// single-shard reports byte-identical to the pre-sharding schema).
    pub sharding: Option<ShardingSummary>,
    /// Final node-telemetry snapshot, attached to self-orchestrated
    /// runs (the key is omitted from the JSON otherwise — same
    /// byte-compatibility rule as `sharding`).
    pub metrics: Option<MetricsSummary>,
}

impl BenchReport {
    /// Assembles a report from a finished run. `f` is the protocol's
    /// fault tolerance at size `n` (`(n-1)/3` for the `3f+1` stacks,
    /// `(n-1)/2` for the hybrid — the caller knows which). `committed`
    /// should carry the cluster-side commit probe where one exists
    /// (pass `stats.completed` otherwise).
    #[allow(clippy::too_many_arguments)]
    pub fn from_stats(
        name: impl Into<String>,
        protocol: impl Into<String>,
        n: usize,
        f: usize,
        app: impl Into<String>,
        workload: Workload,
        mode: LoadMode,
        clients: usize,
        pipeline: usize,
        duration: Duration,
        batch: BatchSummary,
        stats: &LoadStats,
        committed: u64,
    ) -> Self {
        BenchReport {
            name: sanitize_name(&name.into()),
            protocol: protocol.into(),
            n,
            f,
            app: app.into(),
            workload,
            mode,
            clients,
            pipeline,
            duration,
            batch,
            issued: stats.issued,
            completed: stats.completed,
            timed_out: stats.timed_out,
            committed,
            throughput_rps: stats.completed as f64 / duration.as_secs_f64(),
            latency: LatencySummary {
                p50_us: stats.hist.percentile(0.50),
                p95_us: stats.hist.percentile(0.95),
                p99_us: stats.hist.percentile(0.99),
                max_us: stats.hist.max_us(),
                mean_us: stats.hist.mean_us(),
            },
            window: stats.windows.window(),
            window_counts: stats.windows.counts().to_vec(),
            durability: None,
            sharding: None,
            metrics: None,
        }
    }

    /// Attaches the durability-plane measurement (builder style).
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilitySummary) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Attaches the sharding-plane measurement (builder style).
    #[must_use]
    pub fn with_sharding(mut self, sharding: ShardingSummary) -> Self {
        self.sharding = Some(sharding);
        self
    }

    /// Attaches the final node-telemetry snapshot (builder style).
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsSummary) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let window_secs = self.window.as_secs_f64();
        let windows: Vec<String> = self
            .window_counts
            .iter()
            .enumerate()
            .map(|(i, &completed)| {
                format!(
                    r#"{{"t_secs":{:.3},"completed":{completed},"rps":{:.3}}}"#,
                    i as f64 * window_secs,
                    completed as f64 / window_secs,
                )
            })
            .collect();
        let offered = match self.mode {
            LoadMode::Closed => "null".to_string(),
            LoadMode::Open { rate } => format!("{rate:.3}"),
        };
        let mode = match self.mode {
            LoadMode::Closed => "closed",
            LoadMode::Open { .. } => "open",
        };
        let durability = match &self.durability {
            None => "null".to_string(),
            Some(d) => format!(
                r#"{{"wal_group_commit_us": {}, "fsyncs": {}, "fsyncs_per_completed": {}}}"#,
                d.wal_group_commit_us,
                d.fsyncs,
                d.fsyncs_per_completed.map_or("null".into(), |v| format!("{v:.3}")),
            ),
        };
        // Omitted — not `null` — when absent, so single-shard reports
        // stay byte-identical to the pre-sharding schema.
        let sharding = match &self.sharding {
            None => String::new(),
            Some(s) => format!("  \"sharding\": {},\n", s.to_json()),
        };
        let metrics = match &self.metrics {
            None => String::new(),
            Some(m) => format!("  \"metrics\": {},\n", m.to_json()),
        };
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"{schema}\",\n",
                "  \"name\": \"{name}\",\n",
                "  \"protocol\": \"{protocol}\",\n",
                "  \"n\": {n},\n",
                "  \"f\": {f},\n",
                "  \"app\": \"{app}\",\n",
                "  \"workload\": {workload},\n",
                "  \"mode\": \"{mode}\",\n",
                "  \"offered_rps\": {offered},\n",
                "  \"clients\": {clients},\n",
                "  \"pipeline\": {pipeline},\n",
                "  \"duration_secs\": {duration:.3},\n",
                "  \"batch\": {{\"max_frames\": {max_frames}, \"max_bytes\": {max_bytes}, \"linger_us\": {linger_us}}},\n",
                "  \"requests\": {{\"issued\": {issued}, \"completed\": {completed}, \"timed_out\": {timed_out}}},\n",
                "  \"committed\": {committed},\n",
                "  \"durability\": {durability},\n",
                "{sharding}",
                "{metrics}",
                "  \"throughput_rps\": {throughput:.3},\n",
                "  \"latency_us\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"max\": {max}, \"mean\": {mean:.1}}},\n",
                "  \"window_secs\": {window_secs:.3},\n",
                "  \"windows\": [{windows}]\n",
                "}}\n",
            ),
            schema = SCHEMA,
            name = json_escape(&self.name),
            protocol = json_escape(&self.protocol),
            n = self.n,
            f = self.f,
            app = json_escape(&self.app),
            workload = self.workload.to_json(),
            mode = mode,
            offered = offered,
            clients = self.clients,
            pipeline = self.pipeline,
            duration = self.duration.as_secs_f64(),
            max_frames = self.batch.max_frames,
            max_bytes = self.batch.max_bytes,
            linger_us = self.batch.linger_us,
            issued = self.issued,
            completed = self.completed,
            timed_out = self.timed_out,
            committed = self.committed,
            durability = durability,
            sharding = sharding,
            metrics = metrics,
            throughput = self.throughput_rps,
            p50 = self.latency.p50_us,
            p95 = self.latency.p95_us,
            p99 = self.latency.p99_us,
            max = self.latency.max_us,
            mean = self.latency.mean_us,
            window_secs = window_secs,
            windows = windows.join(", "),
        )
    }

    /// The file name this report writes to: `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Writes `BENCH_<name>.json` into `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// One human-readable summary line (used by the sweep mode's table).
    pub fn summary_line(&self) -> String {
        format!(
            "{:<9} {:<10} n={} c={} p={} | {:>9.1} req/s | p50 {:>7} µs | p99 {:>7} µs | {} issued / {} completed / {} timed out",
            self.protocol,
            self.app,
            self.n,
            self.clients,
            self.pipeline,
            self.throughput_rps,
            self.latency.p50_us,
            self.latency.p99_us,
            self.issued,
            self.completed,
            self.timed_out,
        )
    }
}

/// One point of an open-loop saturation sweep: what one offered rate
/// achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered load, requests per second.
    pub offered_rps: f64,
    /// Achieved throughput (completions per second of window).
    pub achieved_rps: f64,
    /// Median completion latency.
    pub p50_us: u64,
    /// 99th-percentile completion latency.
    pub p99_us: u64,
    /// Requests that never completed within the drain window.
    pub timed_out: u64,
}

impl SweepPoint {
    /// `true` while the cluster keeps up with the offered load (within
    /// 10% — scheduling slop, not saturation).
    pub fn keeping_up(&self) -> bool {
        self.achieved_rps >= 0.9 * self.offered_rps
    }
}

/// An open-loop rate sweep across one protocol: the latency/throughput
/// curve and its knee. Serialized as `BENCH_rate_sweep_<name>.json`
/// (schema [`SWEEP_SCHEMA`]).
#[derive(Debug, Clone)]
pub struct RateSweepReport {
    /// Report name; the file is `BENCH_rate_sweep_<name>.json`.
    pub name: String,
    /// Protocol under test.
    pub protocol: String,
    /// Transport backend the replicas ran on (`blocking` / `evented`).
    pub transport: String,
    /// Cluster size.
    pub n: usize,
    /// Replicated application.
    pub app: String,
    /// Concurrent clients per point.
    pub clients: usize,
    /// Measurement window per point.
    pub duration: Duration,
    /// The measured points, in offered-rate order.
    pub points: Vec<SweepPoint>,
}

/// Schema identifier of [`RateSweepReport`] files.
pub const SWEEP_SCHEMA: &str = "splitbft-bench-rate-sweep/v1";

impl RateSweepReport {
    /// The knee of the curve: the highest offered rate the cluster
    /// still kept up with ([`SweepPoint::keeping_up`]). `None` when
    /// even the lowest offered rate saturated it.
    pub fn knee(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.keeping_up())
            .max_by(|a, b| a.offered_rps.total_cmp(&b.offered_rps))
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    r#"{{"offered_rps":{:.3},"achieved_rps":{:.3},"p50_us":{},"p99_us":{},"timed_out":{},"keeping_up":{}}}"#,
                    p.offered_rps, p.achieved_rps, p.p50_us, p.p99_us, p.timed_out, p.keeping_up(),
                )
            })
            .collect();
        let knee = match self.knee() {
            Some(p) => format!("{:.3}", p.offered_rps),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"{schema}\",\n",
                "  \"name\": \"{name}\",\n",
                "  \"protocol\": \"{protocol}\",\n",
                "  \"transport\": \"{transport}\",\n",
                "  \"n\": {n},\n",
                "  \"app\": \"{app}\",\n",
                "  \"clients\": {clients},\n",
                "  \"duration_secs\": {duration:.3},\n",
                "  \"knee_offered_rps\": {knee},\n",
                "  \"points\": [{points}]\n",
                "}}\n",
            ),
            schema = SWEEP_SCHEMA,
            name = json_escape(&self.name),
            protocol = json_escape(&self.protocol),
            transport = json_escape(&self.transport),
            n = self.n,
            app = json_escape(&self.app),
            clients = self.clients,
            duration = self.duration.as_secs_f64(),
            knee = knee,
            points = points.join(", "),
        )
    }

    /// The file name this report writes to.
    pub fn file_name(&self) -> String {
        format!("BENCH_rate_sweep_{}.json", sanitize_name(&self.name))
    }

    /// Writes the report into `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// A human-readable knee summary.
    pub fn summary_line(&self) -> String {
        match self.knee() {
            Some(p) => format!(
                "{}: knee ≈ {:.0} req/s offered ({:.0} achieved, p50 {} µs, p99 {} µs)",
                self.protocol, p.offered_rps, p.achieved_rps, p.p50_us, p.p99_us,
            ),
            None => format!(
                "{}: saturated at every offered rate (lowest {:.0} req/s)",
                self.protocol,
                self.points.first().map_or(0.0, |p| p.offered_rps),
            ),
        }
    }
}

/// Keeps report names shell- and filesystem-safe. Shared by every
/// `BENCH_*.json` writer in the workspace (the chaos reports reuse it).
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect()
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// the workspace has no serde, so every report writer shares this one.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{LatencyHistogram, Windows};

    fn sample_report() -> BenchReport {
        let mut hist = LatencyHistogram::new();
        let mut windows = Windows::new(Duration::from_secs(1));
        for us in [100u64, 200, 300, 400] {
            hist.record(Duration::from_micros(us));
            windows.record(Duration::from_millis(us));
        }
        let stats = LoadStats {
            issued: 4,
            completed: 4,
            timed_out: 0,
            elapsed: Duration::from_secs(2),
            hist,
            windows,
            per_shard_completed: vec![4],
        };
        BenchReport::from_stats(
            "unit test",
            "pbft",
            4,
            1,
            "counter",
            Workload::Counter,
            LoadMode::Closed,
            2,
            2,
            Duration::from_secs(2),
            BatchSummary { max_frames: 64, max_bytes: 262_144, linger_us: 0 },
            &stats,
            4,
        )
    }

    #[test]
    fn json_contains_every_schema_key() {
        let json = sample_report().to_json();
        for key in [
            "\"schema\"", "\"name\"", "\"protocol\"", "\"n\"", "\"f\"", "\"app\"",
            "\"workload\"", "\"mode\"", "\"offered_rps\"", "\"clients\"", "\"pipeline\"",
            "\"duration_secs\"", "\"batch\"", "\"requests\"", "\"issued\"", "\"completed\"",
            "\"timed_out\"", "\"committed\"", "\"throughput_rps\"", "\"latency_us\"",
            "\"p50\"", "\"p95\"", "\"p99\"", "\"max\"", "\"mean\"", "\"window_secs\"",
            "\"windows\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.contains(SCHEMA));
    }

    #[test]
    fn durability_section_serializes_when_present() {
        let json = sample_report().to_json();
        assert!(json.contains("\"durability\": null"), "absent by default:\n{json}");
        let with = sample_report().with_durability(DurabilitySummary {
            wal_group_commit_us: 200,
            fsyncs: 120,
            fsyncs_per_completed: Some(0.4),
        });
        let json = with.to_json();
        assert!(json.contains("\"wal_group_commit_us\": 200"), "{json}");
        assert!(json.contains("\"fsyncs\": 120"));
        assert!(json.contains("\"fsyncs_per_completed\": 0.400"));
    }

    #[test]
    fn sharding_section_is_omitted_until_attached() {
        let json = sample_report().to_json();
        assert!(
            !json.contains("sharding"),
            "single-shard reports must stay byte-identical to the pre-sharding schema:\n{json}"
        );
        let with = sample_report().with_sharding(ShardingSummary {
            shards: 2,
            per_shard_completed: vec![2, 2],
            per_shard_progress: vec![3, 2],
            per_shard_fsyncs: vec![0, 0],
            baseline_rps: Some(1.5),
            scaling_x: Some(1.333),
        });
        let json = with.to_json();
        assert!(json.contains("\"sharding\": {\"shards\": 2"), "{json}");
        assert!(json.contains("\"per_shard_completed\": [2, 2]"));
        assert!(json.contains("\"per_shard_progress\": [3, 2]"));
        assert!(json.contains("\"baseline_rps\": 1.500"));
        assert!(json.contains("\"scaling_x\": 1.333"));
    }

    #[test]
    fn metrics_section_is_omitted_until_attached() {
        let json = sample_report().to_json();
        assert!(
            !json.contains("metrics"),
            "reports without telemetry must stay byte-identical to the pre-metrics schema:\n{json}"
        );
        let with = sample_report().with_metrics(MetricsSummary {
            fsyncs: 120,
            ring_refusals: 3,
            reconnects: 2,
            queue_depth_high_water: 17,
            bytes_in: 4096,
            bytes_out: 8192,
        });
        let json = with.to_json();
        assert!(json.contains("\"metrics\": {\"fsyncs\": 120"), "{json}");
        assert!(json.contains("\"ring_refusals\": 3"));
        assert!(json.contains("\"reconnects\": 2"));
        assert!(json.contains("\"queue_depth_high_water\": 17"));
        assert!(json.contains("\"bytes_in\": 4096"));
        assert!(json.contains("\"bytes_out\": 8192"));
    }

    #[test]
    fn name_is_sanitized_into_file_name() {
        let report = sample_report();
        assert_eq!(report.name, "unit_test");
        assert_eq!(report.file_name(), "BENCH_unit_test.json");
    }

    #[test]
    fn throughput_reflects_duration() {
        let report = sample_report();
        assert!((report.throughput_rps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join("splitbft-loadgen-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample_report().write_to(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"protocol\": \"pbft\""));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    fn sweep_point(offered: f64, achieved: f64) -> SweepPoint {
        SweepPoint {
            offered_rps: offered,
            achieved_rps: achieved,
            p50_us: 500,
            p99_us: 2_000,
            timed_out: 0,
        }
    }

    #[test]
    fn sweep_knee_is_last_rate_the_cluster_keeps_up_with() {
        let sweep = RateSweepReport {
            name: "knee test".into(),
            protocol: "splitbft".into(),
            transport: "blocking".into(),
            n: 4,
            app: "counter".into(),
            clients: 4,
            duration: Duration::from_secs(5),
            points: vec![
                sweep_point(100.0, 99.0),   // keeping up
                sweep_point(1_000.0, 980.0), // keeping up
                sweep_point(5_000.0, 3_100.0), // saturated
            ],
        };
        assert_eq!(sweep.knee().unwrap().offered_rps, 1_000.0);
        let json = sweep.to_json();
        assert!(json.contains(SWEEP_SCHEMA));
        assert!(json.contains("\"knee_offered_rps\": 1000.000"));
        assert!(json.contains("\"keeping_up\":false"));
        assert_eq!(sweep.file_name(), "BENCH_rate_sweep_knee_test.json");
    }

    #[test]
    fn sweep_with_no_sustainable_rate_has_no_knee() {
        let sweep = RateSweepReport {
            name: "flat".into(),
            protocol: "pbft".into(),
            transport: "evented".into(),
            n: 4,
            app: "counter".into(),
            clients: 4,
            duration: Duration::from_secs(5),
            points: vec![sweep_point(10_000.0, 2_000.0)],
        };
        assert!(sweep.knee().is_none());
        assert!(sweep.to_json().contains("\"knee_offered_rps\": null"));
        assert!(sweep.summary_line().contains("saturated"));
    }
}
