//! Operation generators for the three replicated applications.
//!
//! A workload turns a per-client RNG into the operation bytes each
//! request carries: counter increments, key-value traffic with keyspace
//! / value-size / read-ratio knobs (the paper's KVS evaluation uses
//! 10-byte PUT payloads — the default here), or opaque blockchain
//! transactions ordered into blocks of five.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::Rng;
use splitbft_app::KvOp;
use splitbft_types::{shard_for_key, ShardId};

/// Which operation stream a load generator issues.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// `inc` operations against the counter app.
    Counter,
    /// A mix of `GET`/`PUT` against the key-value store.
    Kvs {
        /// Number of distinct keys, addressed uniformly.
        keys: u64,
        /// Value bytes per `PUT`.
        value_size: usize,
        /// Fraction of operations that are reads (`0.0 ..= 1.0`).
        read_ratio: f64,
    },
    /// Opaque transactions for the blockchain ordering service.
    Blockchain {
        /// Transaction payload bytes.
        payload: usize,
    },
}

impl Workload {
    /// The paper's KVS configuration: 10-byte PUT payloads, pure writes.
    pub fn paper_kvs() -> Self {
        Workload::Kvs { keys: 1_000, value_size: 10, read_ratio: 0.0 }
    }

    /// Generates the next operation. `sequence` is the issuing client's
    /// per-request counter, used to make blockchain transactions
    /// distinct without allocating identity elsewhere.
    pub fn next_op(&self, rng: &mut StdRng, sequence: u64) -> Bytes {
        match self {
            Workload::Counter => Bytes::from_static(b"inc"),
            Workload::Kvs { keys, value_size, read_ratio } => {
                let key = format!("key{:08}", rng.gen_range(0..(*keys).max(1)));
                if *read_ratio > 0.0 && rng.gen_bool((*read_ratio).clamp(0.0, 1.0)) {
                    KvOp::get(key.as_bytes()).encode_op()
                } else {
                    KvOp::put(key.as_bytes(), &vec![b'v'; *value_size]).encode_op()
                }
            }
            Workload::Blockchain { payload } => {
                let mut tx = Vec::with_capacity(payload + 8);
                tx.extend_from_slice(&sequence.to_le_bytes());
                tx.resize((*payload).max(8), b'x');
                Bytes::from(tx)
            }
        }
    }

    /// Shard-aware generation for sharded clusters: returns the next
    /// operation plus the shard it routes to. KVS keys are drawn so
    /// that consecutive requests cycle the shards round-robin (the
    /// random key is re-drawn until it hashes to `sequence % shards`,
    /// bounded so a tiny keyspace cannot stall the generator) — every
    /// consensus group carries an even slice of the offered load, which
    /// is what the scaling report measures. Non-keyed workloads pin to
    /// shard 0, exactly like the server-side router.
    pub fn next_op_sharded(
        &self,
        rng: &mut StdRng,
        sequence: u64,
        shards: u32,
    ) -> (Bytes, ShardId) {
        if shards <= 1 || !matches!(self, Workload::Kvs { .. }) {
            return (self.next_op(rng, sequence), ShardId(0));
        }
        let target = ShardId((sequence % u64::from(shards)) as u32);
        let mut op = self.next_op(rng, sequence);
        for _ in 0..64 {
            match shard_of_kv_op(&op, shards) {
                Some(shard) if shard == target => return (op, shard),
                _ => op = self.next_op(rng, sequence),
            }
        }
        (op.clone(), shard_of_kv_op(&op, shards).unwrap_or(ShardId(0)))
    }

    /// Short name used in report file names.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Counter => "counter",
            Workload::Kvs { .. } => "kvs",
            Workload::Blockchain { .. } => "blockchain",
        }
    }

    /// The workload's knobs as a JSON object (for the report).
    pub fn to_json(&self) -> String {
        match self {
            Workload::Counter => r#"{"kind":"counter"}"#.to_string(),
            Workload::Kvs { keys, value_size, read_ratio } => format!(
                r#"{{"kind":"kvs","keys":{keys},"value_size":{value_size},"read_ratio":{read_ratio}}}"#
            ),
            Workload::Blockchain { payload } => {
                format!(r#"{{"kind":"blockchain","payload":{payload}}}"#)
            }
        }
    }
}

/// The shard a KVS operation routes to, mirroring the server-side
/// router: decode, hash the key, pin undecodable ops to shard 0.
/// `None` for undecodable bytes (callers decide the fallback).
pub fn shard_of_kv_op(op: &[u8], shards: u32) -> Option<ShardId> {
    let key = match splitbft_types::wire::decode::<KvOp>(op).ok()? {
        KvOp::Put { key, .. } | KvOp::Get { key } | KvOp::Delete { key } => key,
    };
    Some(shard_for_key(&key, shards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use splitbft_app::{Application, CounterApp, KeyValueStore};

    #[test]
    fn counter_ops_execute() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut app = CounterApp::new();
        let op = Workload::Counter.next_op(&mut rng, 0);
        app.execute(&op);
        assert_eq!(app.value(), 1);
    }

    #[test]
    fn kvs_ops_are_valid_and_respect_value_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Workload::Kvs { keys: 10, value_size: 64, read_ratio: 0.5 };
        let mut app = KeyValueStore::new();
        for i in 0..100 {
            let op = w.next_op(&mut rng, i);
            // Valid operations never execute as the no-op marker.
            assert_ne!(&app.execute(&op)[..], splitbft_app::NOOP_RESULT);
        }
        assert!(app.len() <= 10, "keyspace bound violated");
    }

    #[test]
    fn blockchain_transactions_are_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Workload::Blockchain { payload: 32 };
        let a = w.next_op(&mut rng, 1);
        let b = w.next_op(&mut rng, 2);
        assert_eq!(a.len(), 32);
        assert_ne!(a, b);
    }

    #[test]
    fn json_knobs_round_through() {
        assert!(Workload::paper_kvs().to_json().contains(r#""value_size":10"#));
        assert!(Workload::Counter.to_json().contains("counter"));
    }
}
